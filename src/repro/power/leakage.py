"""Hamming-weight / Hamming-distance leakage synthesis.

``LeakageModel.expand`` turns the CPU's per-instruction execution
events into one noiseless power sample per clock cycle:

- the *fetch* cycle of every instruction leaks the Hamming weight of the
  fetched word and the Hamming distance to the previously fetched word
  (instruction-bus toggling) — this is what makes the three branches of
  Fig. 2 visually distinguishable (Fig. 3b of the paper);
- *operand* and *writeback* cycles leak the Hamming weights of source
  and destination values and the Hamming distance to the overwritten
  register content — this carries the sampled coefficient (vulnerability
  2) and its negation (vulnerability 3);
- the sequential multiplier/divider engines leak the evolving internal
  accumulator/remainder per step, with a constant engine-activity
  offset; these long high-power bursts are the "distinguishable and
  visible peaks" that the segmentation stage anchors on (Fig. 3a);
- memory cycles leak address and data-bus weights (the
  ``coeff_modulus[j] - noise`` stores of the negative branch).

The expansion is fully vectorized over the event log's int64 columns:
32-bit Hamming weights come from a 16-bit popcount lookup table, the
per-op-class cycle layouts are scattered into one preallocated sample
buffer through cumulative cycle offsets, and the 32-step
multiplier/divider engine traces are computed as ``(n_events, 32)``
bit-matrix operations (steps contiguous per event).  ``expand_reference`` keeps the original scalar
implementation; both produce bit-identical float64 output (the tests
assert exact equality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import get_kernel
from repro.riscv import cycles as cy
from repro.riscv.cpu import EventLog, ExecutionEvent

_MASK32 = 0xFFFFFFFF

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Popcount of every 16-bit value; two lookups give a 32-bit popcount.
#: uint8 keeps the table at 64 KiB so the gathers stay cache-resident.
_POP16 = (
    np.unpackbits(np.arange(1 << 16, dtype=np.uint16).view(np.uint8))
    .reshape(1 << 16, 16)
    .sum(axis=1)
    .astype(np.uint8)
)

#: CYCLES as a dense vector indexable by op-class arrays.
_CYCLES_BY_CLASS = np.array(
    [cy.CYCLES[op] for op in range(len(cy.CYCLES))], dtype=np.int64
)

#: Engine-step indices as a row so the per-event step matrices come out
#: ``(n_events, 32)``: the 32 steps of one event are then contiguous,
#: which keeps the axis-1 cumsum/divmod and the sample scatter (32
#: consecutive samples per event) cache-friendly on batched expansions.
_ENGINE_STEPS_UP = np.arange(32, dtype=np.int64)[None, :]
_ENGINE_STEPS_DOWN = np.arange(31, -1, -1, dtype=np.int64)[None, :]

#: Low-bit prefix masks per multiplier step: the shift-add accumulator
#: after step ``i`` is ``(a * (b & prefix_i)) mod 2**32`` — one
#: broadcast multiply replaces the partial-product cumsum (int64
#: wraparound is harmless: 2**32 divides 2**64).
_MUL_PREFIX = (np.int64(2) << np.arange(32, dtype=np.int64))[None, :] - 1

_EV_FIELDS = len(ExecutionEvent._fields)


def _hw(value: int) -> int:
    return (value & _MASK32).bit_count()


def _hw32(values: np.ndarray) -> np.ndarray:
    """Elementwise 32-bit Hamming weight of 32-bit values held in int64.

    ``np.bitwise_count`` is a native popcount ufunc (NumPy >= 2.0);
    the 16-bit table double-lookup is kept as the fallback for older
    runtimes.  Both return the exact same small integers.
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values)
    return _POP16[values & 0xFFFF] + _POP16[values >> 16]


def _event_columns(events) -> np.ndarray:
    """Events as an ``(8, n)`` int64 matrix, zero-copy for an EventLog."""
    if isinstance(events, EventLog):
        return events.columns()
    if len(events) == 0:
        return np.zeros((len(ExecutionEvent._fields), 0), dtype=np.int64)
    return np.asarray(events, dtype=np.int64).T


@dataclass
class LeakageModel:
    """Weights of the first-order CMOS power model.

    The defaults give data-dependent swings comparable to the baseline,
    which together with the scope noise reproduces the paper's accuracy
    regime (Table I): negatives well separated, positives confused
    within Hamming-weight classes.
    """

    weight_data: float = 1.0  # HW of operands / results / bus data
    weight_transition: float = 0.8  # HD of overwritten state
    weight_fetch: float = 0.4  # HW/HD of the instruction bus
    weight_engine: float = 1.0  # HW of mul/div internal state per step
    engine_offset: float = 40.0  # constant mul/div engine activity
    baseline: float = 4.0  # static power per cycle

    # ------------------------------------------------------------------
    def expand(
        self, events: Sequence[ExecutionEvent]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expand events into per-cycle samples (vectorized).

        Returns ``(samples, starts)`` where ``starts[i]`` is the sample
        index of event ``i``'s first cycle (ground truth used only by
        tests, never by the attack).  Accepts an
        :class:`~repro.riscv.cpu.EventLog` (zero-copy) or any sequence
        of :class:`~repro.riscv.cpu.ExecutionEvent`.
        """
        return self._expand_core(_event_columns(events), None)

    def expand_lanes(
        self, events, lane_counts: Optional[Sequence[int]] = None
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Expand a whole lane batch's events in one vectorized pass.

        ``events`` is normally a
        :class:`~repro.riscv.lanes.LaneEventLog` (per-lane row counts
        come from the arena itself); alternatively pass any event
        matrix ``expand`` accepts plus explicit ``lane_counts``
        partitioning its rows into consecutive per-lane runs.

        Returns one ``(samples, starts)`` pair per lane, bit-identical
        to calling :meth:`expand` on that lane's events alone: the
        instruction-bus Hamming-distance state resets at every lane
        boundary, and the per-class scatters land in disjoint per-lane
        sample regions, so batching cannot change any float64 value.
        The sample arrays are views into one shared buffer.
        """
        if lane_counts is None:
            lane_counts = events.lane_counts()
            cols = events.columns()
        else:
            cols = _event_columns(events)
        lane_counts = np.asarray(lane_counts, dtype=np.int64)
        bounds = np.zeros(lane_counts.size + 1, dtype=np.int64)
        np.cumsum(lane_counts, out=bounds[1:])
        n = int(bounds[-1])
        if cols.shape[1] != n:
            raise ValueError(
                f"lane counts sum to {n}, got {cols.shape[1]} events"
            )
        samples, starts = self._expand_core(cols, bounds[:-1])
        csum = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(_CYCLES_BY_CLASS[cols[0]], out=csum[1:])
        sample_bounds = csum[bounds]
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for lane in range(lane_counts.size):
            lo = int(sample_bounds[lane])
            out.append(
                (
                    samples[lo : int(sample_bounds[lane + 1])],
                    starts[bounds[lane] : bounds[lane + 1]] - lo,
                )
            )
        return out

    def _block_emitter(self, block) -> Tuple[object, np.ndarray]:
        """The block's fused emitter for this model's weights.

        Emitters are cached on the :class:`~repro.riscv.lanes.LaneBlock`
        itself (keyed by the weight tuple): block shapes are few and
        hot, so every dispatch of a block after the first reuses one
        compiled function across traces, batches and acquisitions.
        """
        key = (
            self.weight_data,
            self.weight_transition,
            self.weight_fetch,
            self.weight_engine,
            self.engine_offset,
            self.baseline,
        )
        entry = block.emitters.get(key)
        if entry is None:
            entry = _compile_emitter(self, block)
            block.emitters[key] = entry
        return entry

    def expand_arena(
        self,
        events,
        cycle_totals: Sequence[int],
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
        """Expand a deferred-record lane arena into one flat sample buffer.

        This is the fused fast path: instead of materializing the
        arena's row-major event matrix and expanding it per op class
        (:meth:`expand_lanes`), it walks the arena's dispatch records
        directly.  Each ``dyn`` record names a compiled
        :class:`~repro.riscv.lanes.LaneBlock` plus the per-lane dynamic
        values; a per-block *emitter* — generated source specialised to
        the block's event template with every static Hamming weight
        constant-folded — computes the block's dense ``(lanes, cycles)``
        leakage matrix in a handful of vector ops and scatters it at
        ``lane_base + cycle_start``.  Scalar-engine episodes (``rows``
        records) fall back to :meth:`_expand_core` in scatter mode.

        ``cycle_totals`` gives each lane's final cycle count; lane
        ``i`` owns ``flat[bounds[i]:bounds[i + 1]]``.  Returns
        ``(flat, bounds, starts)`` with per-lane event-start offsets.
        Output is bit-identical to :meth:`expand` on each lane's own
        event log — the emitters mirror ``_expand_core``'s float64
        expression order term by term, and the tests assert equality.

        ``out`` is an optional preallocated float64 buffer (e.g. a
        shared-memory scratch slot) reused as the flat sample arena
        when large enough; undersized buffers fall back to a fresh
        allocation, so the result is identical either way.
        """
        totals = np.asarray(cycle_totals, dtype=np.int64)
        bounds = np.zeros(totals.size + 1, dtype=np.int64)
        np.cumsum(totals, out=bounds[1:])
        total = int(bounds[-1])
        if out is not None and out.dtype == np.float64 and out.size >= total:
            flat = out[:total]
            flat.fill(self.baseline)
        else:
            flat = np.full(total, self.baseline, dtype=np.float64)
        mask = np.zeros(flat.size, dtype=bool)
        lane_base = bounds[:-1]

        # Group dyn records by block (first-seen order) so each block's
        # emitter runs once over every dispatch of that block at once.
        groups: Dict[int, list] = {}
        order: List[list] = []
        fallback = []
        for rec in events.records():
            tag = rec[0]
            if tag == "dyn":
                entry = groups.get(id(rec[1]))
                if entry is None:
                    entry = [rec[1], [], [], [], []]
                    groups[id(rec[1])] = entry
                    order.append(entry)
                entry[1].append(rec[2])
                entry[2].append(rec[3])
                entry[3].append(rec[4])
                entry[4].append(rec[5])
            elif tag == "rows":
                fallback.append(rec[1:])
            else:
                raise ValueError(
                    "expand_arena needs a deferred-record arena; got a "
                    f"{tag!r} record (expand_lanes handles materialized logs)"
                )
        # A compiled backend replaces the generated numpy emitters with
        # one C pass per dispatch group (field resolution + per-event
        # expansion + start mask) — bit-exact by the backend contract
        # (``backend.*.expand_arena`` oracles).  It may decline a block
        # whose event layout it cannot prove static; those fall through
        # to the emitter below.
        kernel = get_kernel("expand_block")
        weights = (
            self.weight_data, self.weight_transition, self.weight_fetch,
            self.weight_engine, self.engine_offset, self.baseline,
        )
        for block, ids_l, cyc_l, prev_l, vals_l in order:
            if len(ids_l) == 1:
                ids, cyc0, prev = ids_l[0], cyc_l[0], prev_l[0]
                vals = vals_l[0]
            else:
                ids = np.concatenate(ids_l)
                cyc0 = np.concatenate(cyc_l)
                prev = np.concatenate(prev_l)
                vals = tuple(
                    np.concatenate([v[i] for v in vals_l])
                    for i in range(len(block.uniq_names))
                )
            dest0 = lane_base[ids] + cyc0
            if kernel is not None and kernel(
                block, dest0, prev, vals, flat, mask, weights
            ):
                continue
            emit, ev_offs = self._block_emitter(block)
            emit(flat, dest0, prev, vals)
            mask[(dest0[:, None] + ev_offs).ravel()] = True
        if fallback:
            dest_l, prev_l, rows_l = [], [], []
            for lane, rows, cyc0, prev_w in fallback:
                if not rows.shape[0]:
                    continue
                cyc = _CYCLES_BY_CLASS[rows[:, 0]]
                ev_starts = np.zeros(rows.shape[0], dtype=np.int64)
                np.cumsum(cyc[:-1], out=ev_starts[1:])
                dest_l.append(int(lane_base[lane]) + int(cyc0) + ev_starts)
                pw = np.empty(rows.shape[0], dtype=np.int64)
                pw[0] = prev_w
                pw[1:] = rows[:-1, 1]
                prev_l.append(pw)
                rows_l.append(rows)
            if rows_l:
                dest = np.concatenate(dest_l)
                self._expand_core(
                    np.concatenate(rows_l).T,
                    None,
                    prev=np.concatenate(prev_l),
                    dest=dest,
                    out=flat,
                )
                mask[dest] = True
        starts = [
            np.flatnonzero(mask[int(bounds[i]) : int(bounds[i + 1])])
            for i in range(totals.size)
        ]
        return flat, bounds, starts

    def _expand_core(
        self,
        cols: np.ndarray,
        resets: Optional[np.ndarray],
        prev: Optional[np.ndarray] = None,
        dest: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The shared expansion kernel over an ``(8, n)`` event matrix.

        ``resets`` lists row indices where the fetched-word history
        starts over (lane boundaries in a batched expansion).
        ``expand_arena`` drives the scatter mode: ``dest`` gives every
        event's absolute first-cycle sample index into ``out`` (a
        baseline-prefilled arena) and ``prev`` the previously-fetched
        word per event, so non-contiguous episodes expand straight into
        a shared flat buffer with no per-episode allocation.
        """
        n = cols.shape[1]
        if n == 0:
            return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.int64)
        op, word, rs1, rs2, result, old_rd, address, _pc = cols

        wd = self.weight_data
        wt = self.weight_transition
        wf = self.weight_fetch
        we = self.weight_engine
        base = self.baseline

        if dest is None:
            cycles = _CYCLES_BY_CLASS[op]
            starts = np.zeros(n, dtype=np.int64)
            np.cumsum(cycles[:-1], out=starts[1:])
            total = int(starts[-1] + cycles[-1])
            samples = np.full(total, base, dtype=np.float64)
        else:
            starts = dest
            samples = out

        # A compiled compute backend replaces the whole per-class
        # scatter below with one pass over the event log — bit-exact by
        # the backend contract (its float expression trees mirror this
        # method operation for operation; ``backend.*.expand`` oracles).
        kernel = get_kernel("expand_events")
        if kernel is not None:
            if prev is None:
                previous_word = np.empty_like(word)
                previous_word[0] = 0
                previous_word[1:] = word[:-1]
                if resets is not None:
                    previous_word[resets[resets < n]] = 0
            else:
                previous_word = prev
            kernel(
                cols, previous_word, starts, samples,
                (wd, wt, wf, we, self.engine_offset, base),
            )
            return samples, starts

        # Event indices of one op class, ascending (the same order a
        # stable sort would give).  A boolean scan per class beats one
        # O(n log n) argsort of the whole log, and only the classes
        # actually gathered below pay for their scan.
        def cls(klass: int) -> np.ndarray:
            return np.nonzero(op == klass)[0]

        # Hamming weights shared by several cycle layouts, computed once
        # over the whole event log (one batched call for the contiguous
        # rs1/rs2/result rows).  The combined per-cycle values keep the
        # scalar reference's evaluation order so float64 output is
        # bit-identical.
        if prev is None:
            previous_word = np.empty_like(word)
            previous_word[0] = 0
            previous_word[1:] = word[:-1]
            if resets is not None:
                previous_word[resets[resets < n]] = 0
        else:
            previous_word = prev
        hw_rs1, hw_rs2, hw_res = _hw32(cols[2:5])
        hw_wb = _hw32(result ^ old_rd)  # writeback Hamming distance
        fetch_v = base + wf * (_hw32(word) + _hw32(word ^ previous_word))
        operand_v = base + 0.5 * wd * (hw_rs1 + hw_rs2)
        writeback_v = base + wd * hw_res + wt * hw_wb
        data_v = base + wd * hw_res
        target_v = base + wf * hw_res

        # fetch cycle of every instruction: HW of the word + bus toggling
        samples[starts] = fetch_v

        # -- ALU: operand read, then writeback -------------------------
        ev = cls(cy.OP_ALU)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = operand_v[ev]
            samples[idx + 2] = writeback_v[ev]

        # -- sequential multiplier: 32 engine steps + writeback --------
        ev = cls(cy.OP_MUL)
        idx = starts[ev]
        if idx.size:
            a = rs1[ev]
            b = rs2[ev]
            samples[idx + 1] = operand_v[ev]
            # partial products gated by the multiplier bits; the running
            # shift-add accumulator is their masked prefix sum
            partial = ((b[:, None] >> _ENGINE_STEPS_UP) & 1) * (
                (a[:, None] << _ENGINE_STEPS_UP) & _MASK32
            )
            acc = np.cumsum(partial, axis=1) & _MASK32
            samples[idx[:, None] + 2 + _ENGINE_STEPS_UP] = (
                base + self.engine_offset + we * _hw32(acc)
            )
            samples[idx + 34] = writeback_v[ev]
            # remaining cycles up to CYCLES[OP_MUL] stay at the baseline

        # -- restoring divider: 32 remainder steps + writeback ---------
        ev = cls(cy.OP_DIV)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = operand_v[ev]
            # The restoring-divider invariant: after consuming dividend
            # bits 31..i the engine holds remainder = (dividend >> i) mod
            # divisor and quotient = (dividend >> i) div divisor, so the
            # whole 32-step evolution is one broadcast divmod.  A zero
            # divisor never restores: the remainder window slides through
            # the dividend and the quotient stays zero.
            dividend = rs1[ev]
            divisor = rs2[ev][:, None]
            shifted = dividend[:, None] >> _ENGINE_STEPS_DOWN
            zero = divisor == 0
            quo_steps, rem_steps = np.divmod(shifted, np.where(zero, 1, divisor))
            rem_steps = np.where(zero, shifted, rem_steps)
            quo_steps = np.where(zero, 0, quo_steps)
            samples[idx[:, None] + 2 + _ENGINE_STEPS_UP] = (
                base
                + self.engine_offset
                + we * 0.5 * (_hw32(rem_steps) + _hw32(quo_steps))
            )
            samples[idx + 34] = writeback_v[ev]

        # -- loads: address, data bus, writeback, turnaround -----------
        ev = cls(cy.OP_LOAD)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = base + 0.5 * wd * _hw32(address[ev])
            samples[idx + 2] = data_v[ev]
            samples[idx + 3] = writeback_v[ev]

        # -- stores: address, data bus drive, settle -------------------
        ev = cls(cy.OP_STORE)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = base + 0.5 * wd * _hw32(address[ev])
            samples[idx + 2] = data_v[ev]
            samples[idx + 3] = base + 0.5 * wd * hw_res[ev]

        # -- branches --------------------------------------------------
        ev = cls(cy.OP_BRANCH_NOT_TAKEN)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = operand_v[ev]

        ev = cls(cy.OP_BRANCH_TAKEN)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = operand_v[ev]
            samples[idx + 2] = target_v[ev]  # target fetch

        # -- jumps -----------------------------------------------------
        ev = cls(cy.OP_JUMP)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = target_v[ev]
            samples[idx + 2] = base + wt * hw_wb[ev]

        # OP_SYSTEM: fetch cycle only — already written above
        return samples, starts

    # ------------------------------------------------------------------
    def expand_reference(
        self, events: Sequence[ExecutionEvent]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The original scalar expansion, kept as the correctness oracle.

        ``expand`` must produce float64 output exactly equal to this on
        every op class (the tests assert it).
        """
        samples: List[float] = []
        starts = np.empty(len(events), dtype=np.int64)
        wd = self.weight_data
        wt = self.weight_transition
        wf = self.weight_fetch
        base = self.baseline
        previous_word = 0
        for index, event in enumerate(events):
            starts[index] = len(samples)
            op = event.op_class
            word = event.word
            # fetch cycle
            samples.append(
                base + wf * (_hw(word) + _hw(word ^ previous_word))
            )
            previous_word = word
            if op == cy.OP_ALU:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(
                    base
                    + wd * _hw(event.result)
                    + wt * _hw(event.result ^ event.old_rd)
                )
            elif op == cy.OP_MUL:
                self._expand_mul(event, samples)
            elif op == cy.OP_DIV:
                self._expand_div(event, samples)
            elif op == cy.OP_LOAD:
                samples.append(base + 0.5 * wd * _hw(event.address))
                samples.append(base + wd * _hw(event.result))
                samples.append(
                    base
                    + wd * _hw(event.result)
                    + wt * _hw(event.result ^ event.old_rd)
                )
                samples.append(base)
            elif op == cy.OP_STORE:
                samples.append(base + 0.5 * wd * _hw(event.address))
                samples.append(base + wd * _hw(event.result))  # data bus drive
                samples.append(base + 0.5 * wd * _hw(event.result))
                samples.append(base)
            elif op == cy.OP_BRANCH_NOT_TAKEN:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(base)
            elif op == cy.OP_BRANCH_TAKEN:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(base + wf * _hw(event.result))  # target fetch
                samples.append(base)  # pipeline refill
                samples.append(base)
            elif op == cy.OP_JUMP:
                samples.append(base + wf * _hw(event.result))
                samples.append(base + wt * _hw(event.result ^ event.old_rd))
                samples.append(base)
                samples.append(base)
            else:  # OP_SYSTEM: fetch only
                pass
        return np.asarray(samples, dtype=np.float64), starts

    # ------------------------------------------------------------------
    def _expand_mul(self, event: ExecutionEvent, samples: List[float]) -> None:
        """Sequential shift-add multiplier: 32 engine steps + writeback."""
        base = self.baseline
        we = self.weight_engine
        samples.append(
            base
            + 0.5 * self.weight_data * (_hw(event.rs1_value) + _hw(event.rs2_value))
        )
        a = event.rs1_value
        b = event.rs2_value
        acc = 0
        for i in range(32):
            if (b >> i) & 1:
                acc = (acc + (a << i)) & _MASK32
            samples.append(base + self.engine_offset + we * _hw(acc))
        samples.append(
            base
            + self.weight_data * _hw(event.result)
            + self.weight_transition * _hw(event.result ^ event.old_rd)
        )
        # pad to the architectural cycle count
        for _ in range(cy.CYCLES[cy.OP_MUL] - 35):
            samples.append(base)

    def _expand_div(self, event: ExecutionEvent, samples: List[float]) -> None:
        """Restoring divider: 32 remainder steps + writeback."""
        base = self.baseline
        we = self.weight_engine
        samples.append(
            base
            + 0.5 * self.weight_data * (_hw(event.rs1_value) + _hw(event.rs2_value))
        )
        dividend = event.rs1_value
        divisor = event.rs2_value
        remainder = 0
        quotient = 0
        for i in range(31, -1, -1):
            remainder = ((remainder << 1) | ((dividend >> i) & 1)) & _MASK32
            quotient <<= 1
            if divisor and remainder >= divisor:
                remainder -= divisor
                quotient |= 1
            samples.append(
                base + self.engine_offset + we * 0.5 * (_hw(remainder) + _hw(quotient))
            )
        samples.append(
            base
            + self.weight_data * _hw(event.result)
            + self.weight_transition * _hw(event.result ^ event.old_rd)
        )
        for _ in range(cy.CYCLES[cy.OP_DIV] - 35):
            samples.append(base)


# ----------------------------------------------------------------------
# Fused per-block emitters
# ----------------------------------------------------------------------
def _compile_emitter(
    model: LeakageModel, block
) -> Tuple[object, np.ndarray]:
    """Compile one lane block's leakage emitter for one weight set.

    The block's event *shape* is static — per event only a handful of
    template cells are dynamic (``block.cells`` → value-vector indices
    ``block.gather``) — so almost every term of ``_expand_core`` is a
    compile-time constant here: per-event cycle offsets, fetch
    Hamming weights/distances of the straight-line instruction words,
    and any operand/result weight whose register value was folded at
    block-generation time.  What remains is a short generated function

        ``_em(out, dest0, prev, v)``

    that fills a dense ``(dispatch_lanes, block_cycles)`` matrix from a
    precomputed per-block constant row plus one vector expression per
    dynamic cycle, and scatters it into the arena at ``dest0`` (each
    lane's absolute first-cycle index).  ``prev`` is the word fetched
    before this dispatch (the cross-dispatch instruction-bus state) and
    ``v`` the tuple of recorded dynamic value vectors.

    Every emitted float64 expression reproduces ``_expand_core``'s
    term order exactly; constants are folded with the same Python-float
    arithmetic IEEE-754 performs elementwise, so the fused output is
    bit-identical to the row-major expansion.  The multiplier
    accumulator uses the prefix-mask identity ``acc_i = (a * (b &
    ((2 << i) - 1))) mod 2**32`` — equal to the reference's masked
    partial-product prefix sum — to replace the 32-step cumsum with one
    broadcast multiply.

    Returns ``(emitter, event_start_offsets)``.
    """
    tpl = block.template
    dyn = dict(zip(block.cells, block.gather))
    count = block.length

    wd = model.weight_data
    wt = model.weight_transition
    wf = model.weight_fetch
    we = model.weight_engine
    eoff = model.engine_offset
    base = model.baseline

    def spec(j, row):
        """Event ``j`` field ``row``: a ``v[...]`` expression or an int."""
        k = dyn.get(j * _EV_FIELDS + row)
        return f"v[{k}]" if k is not None else int(tpl[j * _EV_FIELDS + row])

    def vec(s):
        """A ``(g, 1)`` operand for the 32-step engine matrices."""
        return f"{s}[:, None]" if isinstance(s, str) else str(s)

    def hw_of(s):
        return f"_hw32({s})" if isinstance(s, str) else str(_hw(s))

    def operand(j):
        a, b = spec(j, 2), spec(j, 3)
        if isinstance(a, int) and isinstance(b, int):
            return base + 0.5 * wd * (_hw(a) + _hw(b))
        return f"BASE + 0.5 * WD * ({hw_of(a)} + {hw_of(b)})"

    def writeback(j):
        r, o = spec(j, 4), spec(j, 5)
        if isinstance(r, int) and isinstance(o, int):
            return base + wd * _hw(r) + wt * _hw(r ^ o)
        return f"BASE + WD * {hw_of(r)} + WT * _hw32({r} ^ {o})"

    # Per-event first-cycle offsets within the block.  Only a terminal
    # branch may have a dynamic op class, so every offset is static.
    offs: List[int] = []
    classes: List = []
    off = 0
    for j in range(count):
        offs.append(off)
        opc = spec(j, 0)
        classes.append(opc)
        if isinstance(opc, str):
            if j != count - 1:
                raise ValueError(
                    "dynamic op class on a non-terminal block event"
                )
        else:
            off += cy.CYCLES[opc]

    const_cols: Dict[int, float] = {}
    body: List[str] = []
    tail: List[str] = []
    hi = 1  # dense-matrix width high-water mark (fetch of event 0)

    def put(col, value):
        nonlocal hi
        hi = max(hi, col + 1)
        if isinstance(value, str):
            body.append(f"    d[:, {col}] = {value}")
        else:
            const_cols[col] = value

    for j in range(count):
        o = offs[j]
        w = int(tpl[j * _EV_FIELDS + 1])
        if j == 0:
            # The only cross-dispatch dependency: HD to the word the
            # lane fetched before entering this block.
            put(o, f"BASE + WF * ({_hw(w)} + _hw32({w} ^ prev_arg))")
        else:
            pw = int(tpl[(j - 1) * _EV_FIELDS + 1])
            put(o, base + wf * (_hw(w) + _hw(w ^ pw)))
        opc = classes[j]
        if isinstance(opc, str):
            # Terminal branch with a dynamic outcome: fetch + operand
            # are unconditional; taken lanes additionally leak the
            # target fetch in their third cycle (a baseline pad for
            # not-taken lanes, which the prefilled arena already holds).
            put(o + 1, operand(j))
            r = spec(j, 4)
            tail.extend(
                [
                    f"    tk = {opc} == {cy.OP_BRANCH_TAKEN}",
                    f"    out[dest0[tk] + {o + 2}] = "
                    f"BASE + WF * _hw32({r}[tk])",
                ]
            )
        elif opc == cy.OP_ALU:
            put(o + 1, operand(j))
            put(o + 2, writeback(j))
        elif opc == cy.OP_MUL:
            put(o + 1, operand(j))
            a, b = spec(j, 2), spec(j, 3)
            if isinstance(a, int) and isinstance(b, int):
                acc = 0
                for i in range(32):
                    if (b >> i) & 1:
                        acc = (acc + (a << i)) & _MASK32
                    put(o + 2 + i, base + eoff + we * _hw(acc))
            else:
                body.extend(
                    [
                        '    with _np.errstate(over="ignore"):',
                        f"        mm = ({vec(a)} * ({vec(b)} & _PREFIX))"
                        f" & {_MASK32}",
                        f"    d[:, {o + 2}:{o + 34}] = "
                        "BASE + EOFF + WE * _hw32(mm)",
                    ]
                )
                hi = max(hi, o + 34)
            put(o + 34, writeback(j))
        elif opc == cy.OP_DIV:
            put(o + 1, operand(j))
            a, b = spec(j, 2), spec(j, 3)
            if isinstance(a, int) and isinstance(b, int):
                remainder = 0
                quotient = 0
                for i in range(31, -1, -1):
                    remainder = (
                        (remainder << 1) | ((a >> i) & 1)
                    ) & _MASK32
                    quotient <<= 1
                    if b and remainder >= b:
                        remainder -= b
                        quotient |= 1
                    put(
                        o + 2 + (31 - i),
                        base + eoff + we * 0.5 * (_hw(remainder) + _hw(quotient)),
                    )
            else:
                body.append(f"    sh = {vec(a)} >> _SDOWN")
                if isinstance(b, int):
                    if b == 0:
                        # A zero divisor never restores: the remainder
                        # window slides through the dividend, quotient 0.
                        hwsum = "(_hw32(sh) + 0)"
                    else:
                        body.append(f"    dq, dr = _np.divmod(sh, {b})")
                        hwsum = "(_hw32(dr) + _hw32(dq))"
                else:
                    body.extend(
                        [
                            f"    dz = {vec(b)} == 0",
                            f"    dq, dr = _np.divmod(sh, "
                            f"_np.where(dz, 1, {vec(b)}))",
                            "    dr = _np.where(dz, sh, dr)",
                            "    dq = _np.where(dz, 0, dq)",
                        ]
                    )
                    hwsum = "(_hw32(dr) + _hw32(dq))"
                body.append(
                    f"    d[:, {o + 2}:{o + 34}] = "
                    f"BASE + EOFF + WE * 0.5 * {hwsum}"
                )
                hi = max(hi, o + 34)
            put(o + 34, writeback(j))
        elif opc == cy.OP_LOAD:
            addr = spec(j, 6)
            put(
                o + 1,
                base + 0.5 * wd * _hw(addr)
                if isinstance(addr, int)
                else f"BASE + 0.5 * WD * _hw32({addr})",
            )
            r = spec(j, 4)
            put(
                o + 2,
                base + wd * _hw(r)
                if isinstance(r, int)
                else f"BASE + WD * _hw32({r})",
            )
            put(o + 3, writeback(j))
        elif opc == cy.OP_STORE:
            addr = spec(j, 6)
            put(
                o + 1,
                base + 0.5 * wd * _hw(addr)
                if isinstance(addr, int)
                else f"BASE + 0.5 * WD * _hw32({addr})",
            )
            r = spec(j, 4)
            put(
                o + 2,
                base + wd * _hw(r)
                if isinstance(r, int)
                else f"BASE + WD * _hw32({r})",
            )
            put(
                o + 3,
                base + 0.5 * wd * _hw(r)
                if isinstance(r, int)
                else f"BASE + 0.5 * WD * _hw32({r})",
            )
        elif opc == cy.OP_BRANCH_NOT_TAKEN:
            put(o + 1, operand(j))
        elif opc == cy.OP_BRANCH_TAKEN:
            put(o + 1, operand(j))
            r = spec(j, 4)
            put(
                o + 2,
                base + wf * _hw(r)
                if isinstance(r, int)
                else f"BASE + WF * _hw32({r})",
            )
        elif opc == cy.OP_JUMP:
            r, old = spec(j, 4), spec(j, 5)
            put(
                o + 1,
                base + wf * _hw(r)
                if isinstance(r, int)
                else f"BASE + WF * _hw32({r})",
            )
            if isinstance(r, int) and isinstance(old, int):
                put(o + 2, base + wt * _hw(r ^ old))
            else:
                put(o + 2, f"BASE + WT * _hw32({r} ^ {old})")
        # OP_SYSTEM: fetch cycle only

    width = hi
    row = np.full(width, base, dtype=np.float64)
    for col, value in const_cols.items():
        row[col] = value
    src = (
        [
            "def _em(out, dest0, prev_arg, v):",
            "    g = dest0.shape[0]",
            f"    d = _np.empty((g, {width}))",
            "    d[:] = _ROW",
        ]
        + body
        + ["    out[dest0[:, None] + _COLS] = d"]
        + tail
    )
    namespace = {
        "_np": np,
        "_hw32": _hw32,
        "_PREFIX": _MUL_PREFIX,
        "_SDOWN": _ENGINE_STEPS_DOWN,
        "BASE": base,
        "WD": wd,
        "WT": wt,
        "WF": wf,
        "WE": we,
        "EOFF": eoff,
        "_ROW": row,
        "_COLS": np.arange(width, dtype=np.int64)[None, :],
    }
    exec("\n".join(src), namespace)  # noqa: S102 - template JIT
    return namespace["_em"], np.asarray(offs, dtype=np.int64)
