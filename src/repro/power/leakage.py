"""Hamming-weight / Hamming-distance leakage synthesis.

``LeakageModel.expand`` turns the CPU's per-instruction
:class:`~repro.riscv.cpu.ExecutionEvent` list into one noiseless power
sample per clock cycle:

- the *fetch* cycle of every instruction leaks the Hamming weight of the
  fetched word and the Hamming distance to the previously fetched word
  (instruction-bus toggling) — this is what makes the three branches of
  Fig. 2 visually distinguishable (Fig. 3b of the paper);
- *operand* and *writeback* cycles leak the Hamming weights of source
  and destination values and the Hamming distance to the overwritten
  register content — this carries the sampled coefficient (vulnerability
  2) and its negation (vulnerability 3);
- the sequential multiplier/divider engines leak the evolving internal
  accumulator/remainder per step, with a constant engine-activity
  offset; these long high-power bursts are the "distinguishable and
  visible peaks" that the segmentation stage anchors on (Fig. 3a);
- memory cycles leak address and data-bus weights (the
  ``coeff_modulus[j] - noise`` stores of the negative branch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.riscv import cycles as cy
from repro.riscv.cpu import ExecutionEvent

_MASK32 = 0xFFFFFFFF


def _hw(value: int) -> int:
    return (value & _MASK32).bit_count()


@dataclass
class LeakageModel:
    """Weights of the first-order CMOS power model.

    The defaults give data-dependent swings comparable to the baseline,
    which together with the scope noise reproduces the paper's accuracy
    regime (Table I): negatives well separated, positives confused
    within Hamming-weight classes.
    """

    weight_data: float = 1.0  # HW of operands / results / bus data
    weight_transition: float = 0.8  # HD of overwritten state
    weight_fetch: float = 0.4  # HW/HD of the instruction bus
    weight_engine: float = 1.0  # HW of mul/div internal state per step
    engine_offset: float = 40.0  # constant mul/div engine activity
    baseline: float = 4.0  # static power per cycle

    # ------------------------------------------------------------------
    def expand(
        self, events: Sequence[ExecutionEvent]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expand events into per-cycle samples.

        Returns ``(samples, starts)`` where ``starts[i]`` is the sample
        index of event ``i``'s first cycle (ground truth used only by
        tests, never by the attack).
        """
        samples: List[float] = []
        starts = np.empty(len(events), dtype=np.int64)
        wd = self.weight_data
        wt = self.weight_transition
        wf = self.weight_fetch
        base = self.baseline
        previous_word = 0
        for index, event in enumerate(events):
            starts[index] = len(samples)
            op = event.op_class
            word = event.word
            # fetch cycle
            samples.append(
                base + wf * (_hw(word) + _hw(word ^ previous_word))
            )
            previous_word = word
            if op == cy.OP_ALU:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(
                    base
                    + wd * _hw(event.result)
                    + wt * _hw(event.result ^ event.old_rd)
                )
            elif op == cy.OP_MUL:
                self._expand_mul(event, samples)
            elif op == cy.OP_DIV:
                self._expand_div(event, samples)
            elif op == cy.OP_LOAD:
                samples.append(base + 0.5 * wd * _hw(event.address))
                samples.append(base + wd * _hw(event.result))
                samples.append(
                    base
                    + wd * _hw(event.result)
                    + wt * _hw(event.result ^ event.old_rd)
                )
                samples.append(base)
            elif op == cy.OP_STORE:
                samples.append(base + 0.5 * wd * _hw(event.address))
                samples.append(base + wd * _hw(event.result))  # data bus drive
                samples.append(base + 0.5 * wd * _hw(event.result))
                samples.append(base)
            elif op == cy.OP_BRANCH_NOT_TAKEN:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(base)
            elif op == cy.OP_BRANCH_TAKEN:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(base + wf * _hw(event.result))  # target fetch
                samples.append(base)  # pipeline refill
                samples.append(base)
            elif op == cy.OP_JUMP:
                samples.append(base + wf * _hw(event.result))
                samples.append(base + wt * _hw(event.result ^ event.old_rd))
                samples.append(base)
                samples.append(base)
            else:  # OP_SYSTEM: fetch only
                pass
        return np.asarray(samples, dtype=np.float64), starts

    # ------------------------------------------------------------------
    def _expand_mul(self, event: ExecutionEvent, samples: List[float]) -> None:
        """Sequential shift-add multiplier: 32 engine steps + writeback."""
        base = self.baseline
        we = self.weight_engine
        samples.append(
            base
            + 0.5 * self.weight_data * (_hw(event.rs1_value) + _hw(event.rs2_value))
        )
        a = event.rs1_value
        b = event.rs2_value
        acc = 0
        for i in range(32):
            if (b >> i) & 1:
                acc = (acc + (a << i)) & _MASK32
            samples.append(base + self.engine_offset + we * _hw(acc))
        samples.append(
            base
            + self.weight_data * _hw(event.result)
            + self.weight_transition * _hw(event.result ^ event.old_rd)
        )
        # pad to the architectural cycle count
        for _ in range(cy.CYCLES[cy.OP_MUL] - 35):
            samples.append(base)

    def _expand_div(self, event: ExecutionEvent, samples: List[float]) -> None:
        """Restoring divider: 32 remainder steps + writeback."""
        base = self.baseline
        we = self.weight_engine
        samples.append(
            base
            + 0.5 * self.weight_data * (_hw(event.rs1_value) + _hw(event.rs2_value))
        )
        dividend = event.rs1_value
        divisor = event.rs2_value
        remainder = 0
        quotient = 0
        for i in range(31, -1, -1):
            remainder = ((remainder << 1) | ((dividend >> i) & 1)) & _MASK32
            quotient <<= 1
            if divisor and remainder >= divisor:
                remainder -= divisor
                quotient |= 1
            samples.append(
                base + self.engine_offset + we * 0.5 * (_hw(remainder) + _hw(quotient))
            )
        samples.append(
            base
            + self.weight_data * _hw(event.result)
            + self.weight_transition * _hw(event.result ^ event.old_rd)
        )
        for _ in range(cy.CYCLES[cy.OP_DIV] - 35):
            samples.append(base)
