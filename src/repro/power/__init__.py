"""Synthetic power-trace acquisition for the simulated device.

Substitutes the paper's SAKURA-G shunt-resistor + PicoScope setup with a
first-order CMOS power model: every execution cycle dissipates power
proportional to the Hamming weight of the data being moved and the
Hamming distance of state transitions, plus Gaussian amplifier noise.

- :mod:`repro.power.leakage` — expands CPU execution events into
  per-cycle power samples;
- :mod:`repro.power.scope` — oscilloscope front-end effects (noise,
  bandwidth, gain, quantisation);
- :mod:`repro.power.trace` — trace containers;
- :mod:`repro.power.capture` — the acquisition harness binding a
  device, a leakage model and a scope.
"""

from repro.power.capture import CapturedTrace, SegmentedCapture, TraceAcquisition
from repro.power.leakage import LeakageModel
from repro.power.scope import Oscilloscope
from repro.power.trace import Trace, TraceSet
from repro.power.visualize import ascii_trace, ascii_trace_with_windows, sparkline

__all__ = [
    "CapturedTrace",
    "SegmentedCapture",
    "LeakageModel",
    "Oscilloscope",
    "Trace",
    "TraceSet",
    "TraceAcquisition",
    "ascii_trace",
    "ascii_trace_with_windows",
    "sparkline",
]
