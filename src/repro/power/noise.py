"""Counter-based measurement-noise streams (noise stream v2).

The v1 batch-noise contract drew each trace's Gaussian noise from a
sequentially-generated ``default_rng(SeedSequence(entropy=(batch
entropy, seed)))`` stream — a pure function of ``(entropy, seed)``,
but one that can only be produced trace-at-a-time.  Stream v2 keeps
the exact same *contract* (per-seed determinism, capture-order and
worker-count invariance, identical marginal distribution) while making
the stream *addressable*: noise sample ``i`` of the ``(entropy,
seed)`` stream is element ``i % NOISE_BLOCK`` of Philox block
``i // NOISE_BLOCK``, and every block is keyed independently by
``(entropy, seed, block)``.  Any contiguous slice of the stream can
therefore be generated in one vectorized call, from any offset, by any
worker, with no sequential state — which is what lets the fused
lane-major capture pipeline add noise to a whole ``(L, samples)``
batch in place.

Keying
    The per-stream 128-bit Philox key is
    ``SeedSequence(entropy=(entropy, seed)).generate_state(2)`` — the
    same entropy-pooling construction v1 used to seed its generator,
    so distinct ``(entropy, seed)`` pairs get independent keys.  Block
    ``b`` XORs ``b`` into the low key word: the Philox keyspace is
    flat, so every block is an independent counter-mode stream, and an
    offset continuation is *bit-identical by construction* to one-shot
    generation (both read the same blocks at the same positions; the
    ``standard_normal`` prefix of a block does not depend on how much
    of it is consumed).

The deliberate bit-compat break with v1 is versioned via
:data:`NOISE_STREAM_VERSION`; the ``power.noise_v2`` oracle in
:mod:`repro.verify.oracles` pins the statistical contract against the
retained v1 reference path.
"""

from __future__ import annotations

import numpy as np

#: Bumped whenever the keyed-noise construction changes incompatibly.
#: Cached profiles and golden fixtures embed this (a stream change
#: silently reused against old templates would corrupt comparisons).
NOISE_STREAM_VERSION = 2

#: Samples per independently-keyed Philox block.  Large enough that a
#: typical single-coefficient trace stays within one block (one
#: generator construction per trace), small enough that a partially
#: consumed tail block wastes little work.
NOISE_BLOCK = 16384


def stream_key(entropy: int, seed: int) -> np.ndarray:
    """The 2x64-bit Philox key of the ``(entropy, seed)`` noise stream."""
    return np.random.SeedSequence(
        entropy=(int(entropy), int(seed))
    ).generate_state(2, np.uint64)


def _block_normals(base_key: np.ndarray, block: int, take: int) -> np.ndarray:
    """The first ``take`` standard normals of one keyed block."""
    key = base_key.copy()
    key[1] ^= np.uint64(block)
    return np.random.Generator(np.random.Philox(key=key)).standard_normal(take)


def standard_noise(entropy: int, seed: int, count: int, offset: int = 0) -> np.ndarray:
    """Samples ``offset .. offset+count`` of the unit-variance stream.

    Pure function of ``(entropy, seed, offset, count)``: generating a
    stream in any partition of contiguous slices yields bit-identical
    samples to one-shot generation.
    """
    if offset < 0 or count < 0:
        raise ValueError("noise offset and count must be non-negative")
    out = np.empty(count, dtype=np.float64)
    if count == 0:
        return out
    base = stream_key(entropy, seed)
    pos = int(offset)
    end = pos + count
    while pos < end:
        block, lo = divmod(pos, NOISE_BLOCK)
        hi = min(end - block * NOISE_BLOCK, NOISE_BLOCK)
        out[pos - offset : pos - offset + (hi - lo)] = _block_normals(
            base, block, hi
        )[lo:]
        pos += hi - lo
    return out


def add_noise(
    out: np.ndarray, entropy: int, seed: int, std: float, offset: int = 0
) -> None:
    """Add ``std``-scaled stream noise to ``out`` in place.

    This is the single noise entry point shared by the threaded
    per-trace capture path and the fused lane-major path: both add
    ``standard_noise(...) * std`` with one in-place ``+=``, so the two
    engines produce bit-identical traces for the same ``(entropy,
    seed)`` regardless of lane width, worker count or capture order.
    """
    if std > 0 and out.size:
        out += standard_noise(entropy, seed, out.size, offset) * std
