"""Trace acquisition harness: device -> leakage model -> oscilloscope.

``TraceAcquisition`` is the reproduction's measurement bench.  One
:meth:`~TraceAcquisition.capture` call corresponds to arming the scope
and triggering one execution of the sampling kernel; the returned
:class:`CapturedTrace` carries the measured trace plus ground truth
(the sampled values) that the *evaluation* uses to score the attack —
the attack itself only ever sees ``trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.power.leakage import LeakageModel
from repro.power.scope import Oscilloscope
from repro.power.trace import Trace
from repro.riscv.device import GaussianSamplerDevice
from repro.utils.rng import new_rng


@dataclass
class CapturedTrace:
    """One armed-and-triggered measurement."""

    trace: Trace
    values: List[int]  # ground-truth sampled coefficients
    seed: int
    cycle_count: int
    event_starts: np.ndarray = field(repr=False, default=None)


class TraceAcquisition:
    """Binds a device, a leakage model and a scope into a capture bench.

    Parameters
    ----------
    device:
        The simulated PicoRV32 running the Gaussian kernel.
    leakage:
        CMOS leakage weights; defaults are calibrated for the paper's
        accuracy regime.
    scope:
        Acquisition front end (noise etc.).
    rng:
        Seed/generator for measurement noise (independent of the
        device's PRNG).
    """

    def __init__(
        self,
        device: GaussianSamplerDevice,
        leakage: Optional[LeakageModel] = None,
        scope: Optional[Oscilloscope] = None,
        rng=None,
    ) -> None:
        self.device = device
        self.leakage = leakage if leakage is not None else LeakageModel()
        self.scope = scope if scope is not None else Oscilloscope()
        self._rng = new_rng(rng)

    # ------------------------------------------------------------------
    def capture(self, seed: int, count: int) -> CapturedTrace:
        """Run the kernel for ``count`` coefficients and measure it."""
        run = self.device.run(seed, count=count, record_events=True)
        noiseless, starts = self.leakage.expand(run.events)
        measured = self.scope.capture(noiseless, rng=self._rng)
        return CapturedTrace(
            trace=Trace(measured, metadata={"seed": seed, "count": count}),
            values=run.values,
            seed=seed,
            cycle_count=run.cycle_count,
            event_starts=starts,
        )

    def capture_single(self, seed: int) -> CapturedTrace:
        """One-coefficient capture (the profiling workload)."""
        return self.capture(seed, count=1)

    def capture_batch(
        self, trace_count: int, coeffs_per_trace: int = 1, first_seed: int = 1
    ) -> List[CapturedTrace]:
        """Capture ``trace_count`` runs with consecutive device seeds."""
        return [
            self.capture(first_seed + i, coeffs_per_trace)
            for i in range(trace_count)
        ]
