"""Trace acquisition harness: device -> leakage model -> oscilloscope.

``TraceAcquisition`` is the reproduction's measurement bench.  One
:meth:`~TraceAcquisition.capture` call corresponds to arming the scope
and triggering one execution of the sampling kernel; the returned
:class:`CapturedTrace` carries the measured trace plus ground truth
(the sampled values) that the *evaluation* uses to score the attack —
the attack itself only ever sees ``trace``.

Batch acquisition (:meth:`~TraceAcquisition.capture_batch`) draws each
trace's measurement noise from the counter-based ``(batch entropy,
device seed)``-keyed stream of :mod:`repro.power.noise` (noise stream
v2), never from the bench's shared sequential stream.  That makes every
trace's noise a pure function of its seed, so the ``workers=`` process
pool produces **bit-identical** traces to the serial path in any
completion order — and because the stream is addressable rather than
sequential, the lanes engine fuses expand → noise → scope into one
lane-major pass over the whole batch (``_capture_lane_chunk``) while
still matching the per-trace threaded path bit for bit.  The
pre-stream-v1 sequential-generator contract survives as
:meth:`~TraceAcquisition.capture_reference`, pinned against v2 by the
``power.noise_v2`` oracle.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import ParameterError, TraceValidationError
from repro.power.leakage import LeakageModel
from repro.power.scope import Oscilloscope
from repro.power.trace import Trace
from repro.riscv.device import GaussianSamplerDevice, resolve_engine
from repro.utils.rng import new_rng


@dataclass
class CapturedTrace:
    """One armed-and-triggered measurement.

    ``trace`` is ``None`` only for slim ground-truth-only captures
    (:meth:`TraceAcquisition.capture_batch` with ``return_traces=False``).
    """

    trace: Optional[Trace]
    values: List[int]  # ground-truth sampled coefficients
    seed: int
    cycle_count: int
    event_starts: Optional[np.ndarray] = field(repr=False, default=None)

    def __post_init__(self) -> None:
        # Fail at the bench, not as a numpy warning three stages later
        # inside segmentation or template fitting.
        if self.trace is None:
            return
        samples = self.trace.samples
        if samples.size == 0:
            raise TraceValidationError(
                f"captured trace for seed {self.seed} is empty"
            )
        if not np.isfinite(samples).all():
            bad = int(np.count_nonzero(~np.isfinite(samples)))
            raise TraceValidationError(
                f"captured trace for seed {self.seed} contains {bad} "
                f"non-finite sample(s)"
            )


@dataclass
class SegmentedCapture:
    """Worker-side segmentation result: aligned slices, no raw trace.

    A full multi-coefficient trace is hundreds of thousands of samples
    plus an event-start array of comparable size; the aligned slices
    the profiling/attack stages actually consume are a few KB.  Moving
    segmentation into the pool workers makes the batch-capture payload
    the slices, cutting inter-process pickle traffic by more than an
    order of magnitude.

    ``slices`` is an ``(n_coefficients, slice_length)`` float64 matrix
    (bit-identical to what the serial segment-in-parent path produces),
    or ``None`` when segmentation failed (``error`` holds the reason).
    """

    slices: Optional[np.ndarray]
    values: List[int]  # ground-truth sampled coefficients
    seed: int
    cycle_count: int
    error: Optional[str] = None

    def __post_init__(self) -> None:
        # ``slices is None`` is the explicit failure path (``error``
        # says why); a zero-*row* matrix just means no aligned windows.
        # Zero-length or non-finite slices would silently poison the
        # streaming moment accumulators downstream.
        if self.slices is None:
            return
        if self.slices.ndim != 2 or self.slices.shape[1] == 0:
            raise TraceValidationError(
                f"segmented capture for seed {self.seed} has unusable "
                f"slice shape {self.slices.shape}"
            )
        if not np.isfinite(self.slices).all():
            bad = int(np.count_nonzero(~np.isfinite(self.slices)))
            raise TraceValidationError(
                f"segmented capture for seed {self.seed} contains {bad} "
                f"non-finite sample(s)"
            )

    @property
    def ok(self) -> bool:
        return self.slices is not None


def _noise_rng(batch_entropy: int, seed: int) -> np.random.Generator:
    """The *v1* per-trace noise generator (sequential, trace-at-a-time).

    Retained for :meth:`TraceAcquisition.capture_reference`: the
    ``power.noise_v2`` oracle compares stream v2 against traces noised
    from this generator to pin the statistical contract."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=(int(batch_entropy), int(seed)))
    )


def _capture_one(
    device: GaussianSamplerDevice,
    leakage: LeakageModel,
    scope: Oscilloscope,
    seed: int,
    count: int,
    batch_entropy: int,
    return_traces: bool = True,
    engine: str = "threaded",
) -> CapturedTrace:
    """One batch capture; shared by the serial path and pool workers.

    ``return_traces=False`` is the slim ground-truth mode: the leakage
    expansion, scope chain and event bookkeeping are skipped entirely
    and the record carries only values/seed/cycle count, so pool pickles
    stay a few bytes per capture.
    """
    if not return_traces:
        run = device.run(seed, count=count, record_events=False, engine=engine)
        return CapturedTrace(
            trace=None,
            values=run.values,
            seed=seed,
            cycle_count=run.cycle_count,
        )
    run = device.run(seed, count=count, record_events=True, engine=engine)
    noiseless, starts = leakage.expand(run.events)
    measured = scope.capture_keyed(noiseless, batch_entropy, seed, out=noiseless)
    return CapturedTrace(
        trace=Trace(measured, metadata={"seed": seed, "count": count}),
        values=run.values,
        seed=seed,
        cycle_count=run.cycle_count,
        event_starts=starts,
    )


def _segment_one(
    device: GaussianSamplerDevice,
    leakage: LeakageModel,
    scope: Oscilloscope,
    segmenter,
    refiner,
    seed: int,
    count: int,
    batch_entropy: int,
    engine: str = "threaded",
) -> SegmentedCapture:
    """Capture one trace and segment it in place (worker-side path)."""
    captured = _capture_one(
        device, leakage, scope, seed, count, batch_entropy, engine=engine
    )
    return _segment_captured(captured, segmenter, refiner)


def _segment_captured(
    captured: CapturedTrace, segmenter, refiner
) -> SegmentedCapture:
    """Segment one already-captured trace into aligned slices."""
    from repro.errors import AttackError

    try:
        aligned = segmenter.aligned_slices(captured.trace.samples, refiner=refiner)
    except AttackError as exc:
        return SegmentedCapture(
            slices=None,
            values=captured.values,
            seed=captured.seed,
            cycle_count=captured.cycle_count,
            error=str(exc),
        )
    if aligned:
        slices = np.vstack(aligned)
    else:
        slices = np.empty((0, segmenter.slice_length), dtype=np.float64)
    return SegmentedCapture(
        slices=slices,
        values=captured.values,
        seed=captured.seed,
        cycle_count=captured.cycle_count,
    )


def _capture_lane_chunk(
    device: GaussianSamplerDevice,
    leakage: LeakageModel,
    scope: Oscilloscope,
    seeds: List[int],
    count: int,
    batch_entropy: int,
    return_traces: bool = True,
    out: Optional[np.ndarray] = None,
) -> List[CapturedTrace]:
    """Capture one chunk of seeds on the lane engine, one lane each.

    This is the fused single-pass pipeline: the chunk executes in
    lock-step, the arena's deferred dispatch records expand straight
    into one flat lane-major buffer (``expand_arena`` — no per-trace
    ``EventLog`` or intermediate noiseless array is ever materialized),
    and the scope chain runs in place over the whole arena with each
    lane's noise drawn from its ``(batch entropy, seed)``-keyed stream.
    Per-trace output is bit-identical to ``_capture_one`` per seed —
    every float64 op matches on the lane's slice alone.
    """
    if not return_traces:
        batch = device.run_lanes(seeds, count, record_events=False)
        return [
            CapturedTrace(
                trace=None,
                values=run.values,
                seed=seed,
                cycle_count=run.cycle_count,
            )
            for seed, run in zip(seeds, batch.runs)
        ]
    batch = device.run_lanes(
        seeds, count, record_events=True, events_per_lane=False
    )
    flat, bounds, starts = leakage.expand_arena(
        batch.events, [run.cycle_count for run in batch.runs], out=out
    )
    scope.capture_batch(flat, bounds, batch_entropy, seeds)
    captures: List[CapturedTrace] = []
    for lane, (seed, run) in enumerate(zip(seeds, batch.runs)):
        lo, hi = int(bounds[lane]), int(bounds[lane + 1])
        captures.append(
            CapturedTrace(
                trace=Trace(
                    flat[lo:hi], metadata={"seed": seed, "count": count}
                ),
                values=run.values,
                seed=seed,
                cycle_count=run.cycle_count,
                event_starts=starts[lane],
            )
        )
    return captures


def _segment_lane_chunk(
    device: GaussianSamplerDevice,
    leakage: LeakageModel,
    scope: Oscilloscope,
    segmenter,
    refiner,
    seeds: List[int],
    count: int,
    batch_entropy: int,
) -> List[SegmentedCapture]:
    """Lane-batched capture + per-trace segmentation (worker-side)."""
    captures = _capture_lane_chunk(
        device, leakage, scope, seeds, count, batch_entropy
    )
    return [_segment_captured(c, segmenter, refiner) for c in captures]


# Worker-process state: the bench components are shipped once via the
# pool initializer instead of being pickled into every task.
_POOL_BENCH: dict = {}


def _pool_init(
    device: GaussianSamplerDevice, leakage: LeakageModel, scope: Oscilloscope
) -> None:
    _POOL_BENCH["parts"] = (device, leakage, scope)


def _pool_capture(args) -> CapturedTrace:
    seed, count, batch_entropy, return_traces, engine = args
    device, leakage, scope = _POOL_BENCH["parts"]
    return _capture_one(
        device, leakage, scope, seed, count, batch_entropy, return_traces, engine
    )


def _pool_capture_lanes(args) -> List[CapturedTrace]:
    seeds, count, batch_entropy, return_traces = args
    device, leakage, scope = _POOL_BENCH["parts"]
    return _capture_lane_chunk(
        device, leakage, scope, list(seeds), count, batch_entropy, return_traces
    )


def _pool_segment_lanes(args) -> List[SegmentedCapture]:
    seeds, count, batch_entropy = args
    device, leakage, scope = _POOL_BENCH["parts"]
    segmenter, refiner = _POOL_BENCH["segmentation"]
    return _segment_lane_chunk(
        device, leakage, scope, segmenter, refiner, list(seeds), count, batch_entropy
    )


def _pool_init_segmented(
    device: GaussianSamplerDevice,
    leakage: LeakageModel,
    scope: Oscilloscope,
    segmenter,
    refiner,
) -> None:
    _POOL_BENCH["parts"] = (device, leakage, scope)
    _POOL_BENCH["segmentation"] = (segmenter, refiner)


def _pool_capture_segmented(args) -> SegmentedCapture:
    seed, count, batch_entropy, engine = args
    device, leakage, scope = _POOL_BENCH["parts"]
    segmenter, refiner = _POOL_BENCH["segmentation"]
    return _segment_one(
        device, leakage, scope, segmenter, refiner, seed, count, batch_entropy, engine
    )


class TraceAcquisition:
    """Binds a device, a leakage model and a scope into a capture bench.

    Parameters
    ----------
    device:
        The simulated PicoRV32 running the Gaussian kernel.
    leakage:
        CMOS leakage weights; defaults are calibrated for the paper's
        accuracy regime.
    scope:
        Acquisition front end (noise etc.).
    rng:
        Seed/generator for measurement noise (independent of the
        device's PRNG).  An integer seed also fixes the batch noise
        entropy, making :meth:`capture_batch` output reproducible
        across bench instances and worker counts.
    engine:
        Default execution engine for this bench's captures
        (``"interpreter"``/``"threaded"``/``"compiled"``/``"lanes"``);
        ``None`` defers to ``REVEAL_ENGINE``, then ``"threaded"``.
        Batch methods can override it per call; ``"compiled"`` falls
        back to ``"threaded"`` where no C toolchain exists.
    lanes:
        Lanes per :class:`~repro.riscv.lanes.LaneEngine` batch when the
        lanes engine is selected.
    """

    def __init__(
        self,
        device: GaussianSamplerDevice,
        leakage: Optional[LeakageModel] = None,
        scope: Optional[Oscilloscope] = None,
        rng=None,
        engine: Optional[str] = None,
        lanes: int = 64,
    ) -> None:
        self.device = device
        self.leakage = leakage if leakage is not None else LeakageModel()
        self.scope = scope if scope is not None else Oscilloscope()
        self.engine = engine
        self.lanes = int(lanes)
        self._rng = new_rng(rng)
        # Integer seeds pin the batch entropy immediately; a fresh
        # bench-private stream (rng=None) can still derive it lazily on
        # first batch use.  An externally-advanced Generator can do
        # neither — its position is caller-owned state, so an entropy
        # drawn from it mid-batch would be irreproducible; batch_entropy()
        # refuses instead of silently consuming the shared stream.
        self._batch_entropy: Optional[int] = (
            int(rng) if isinstance(rng, (int, np.integer)) else None
        )
        self._rng_external = isinstance(rng, np.random.Generator)

    # ------------------------------------------------------------------
    def capture(self, seed: int, count: int) -> CapturedTrace:
        """Run the kernel for ``count`` coefficients and measure it.

        Noise comes from the bench's sequential stream, so back-to-back
        captures draw different noise; use :meth:`capture_batch` when
        per-seed reproducibility matters.
        """
        run = self.device.run(
            seed, count=count, record_events=True, engine=self.engine
        )
        noiseless, starts = self.leakage.expand(run.events)
        measured = self.scope.capture(noiseless, rng=self._rng)
        return CapturedTrace(
            trace=Trace(measured, metadata={"seed": seed, "count": count}),
            values=run.values,
            seed=seed,
            cycle_count=run.cycle_count,
            event_starts=starts,
        )

    def capture_single(self, seed: int) -> CapturedTrace:
        """One-coefficient capture (the profiling workload)."""
        return self.capture(seed, count=1)

    # ------------------------------------------------------------------
    def batch_entropy(self) -> int:
        """The entropy that keys per-trace noise streams in batches.

        Raises
        ------
        ParameterError
            If the bench was constructed with an externally-advanced
            ``Generator``: its stream position is caller state, so no
            reproducible batch entropy can be pinned from it.  Pass an
            integer seed (pins the entropy up front) or ``rng=None``
            (a bench-private stream) for batch captures.
        """
        if self._batch_entropy is None:
            if self._rng_external:
                raise ParameterError(
                    "cannot pin a batch noise entropy from an "
                    "externally-advanced Generator; construct the "
                    "TraceAcquisition with an integer rng seed (or None) "
                    "for batch captures"
                )
            self._batch_entropy = int(self._rng.integers(0, 2**63 - 1))
        return self._batch_entropy

    def capture_reference(
        self,
        trace_count: int,
        coeffs_per_trace: int = 1,
        first_seed: int = 1,
        engine: Optional[str] = None,
    ) -> List[CapturedTrace]:
        """The retained noise-stream-v1 batch path (serial, per trace).

        Bit-identical to what ``capture_batch`` produced before the
        stream-v2 migration: each trace's noise comes sequentially from
        ``default_rng(SeedSequence((batch entropy, seed)))``.  This is
        the reference side of the ``power.noise_v2`` oracle, which pins
        v2's statistical contract (same marginal distribution, same
        determinism guarantees) against this path.
        """
        entropy = self.batch_entropy()
        engine = resolve_engine(engine if engine is not None else self.engine)
        if engine == "lanes":
            engine = "threaded"  # v1 predates the fused lane pipeline
        captures: List[CapturedTrace] = []
        for i in range(trace_count):
            seed = first_seed + i
            run = self.device.run(
                seed, count=coeffs_per_trace, record_events=True, engine=engine
            )
            noiseless, starts = self.leakage.expand(run.events)
            measured = self.scope.capture(
                noiseless, rng=_noise_rng(entropy, seed), out=noiseless
            )
            captures.append(
                CapturedTrace(
                    trace=Trace(
                        measured,
                        metadata={"seed": seed, "count": coeffs_per_trace},
                    ),
                    values=run.values,
                    seed=seed,
                    cycle_count=run.cycle_count,
                    event_starts=starts,
                )
            )
        return captures

    def capture_batch(
        self,
        trace_count: int,
        coeffs_per_trace: int = 1,
        first_seed: int = 1,
        workers: Optional[int] = None,
        return_traces: bool = True,
        engine: Optional[str] = None,
        lanes: Optional[int] = None,
    ) -> List[CapturedTrace]:
        """Capture ``trace_count`` runs with consecutive device seeds.

        ``workers`` > 1 fans the captures out over a process pool.  Each
        trace's noise generator is seeded by ``(batch entropy, device
        seed)``, so the result is bit-identical to the serial path —
        same seeds, same noise — regardless of worker count or
        scheduling order.

        ``return_traces=False`` returns slim ground-truth records
        (``trace``/``event_starts`` set to ``None``): the per-capture
        pool pickle shrinks from hundreds of KB of samples and event
        starts to a few bytes of values, for callers that only need the
        sampled coefficients (class surveys, label generation).

        ``engine="lanes"`` batches ``lanes`` consecutive seeds per
        :class:`~repro.riscv.lanes.LaneEngine` execution (workers then
        fan out over whole chunks); the output is still bit-identical
        to the serial threaded path.
        """
        entropy = self.batch_entropy()
        engine = resolve_engine(engine if engine is not None else self.engine)
        if engine == "lanes":
            lane_tasks = self._lane_tasks(
                trace_count, coeffs_per_trace, first_seed, entropy, lanes,
                extra=(return_traces,),
            )
            chunks = self._run_lane_tasks(
                lane_tasks, workers, _pool_capture_lanes,
                lambda task: _capture_lane_chunk(
                    self.device, self.leakage, self.scope,
                    list(task[0]), *task[1:],
                ),
            )
            return [capture for chunk in chunks for capture in chunk]
        tasks = [
            (first_seed + i, coeffs_per_trace, entropy, return_traces, engine)
            for i in range(trace_count)
        ]
        if workers is None or workers <= 1 or trace_count <= 1:
            return [
                _capture_one(self.device, self.leakage, self.scope, *task)
                for task in tasks
            ]
        pool_size = min(workers, trace_count, (os.cpu_count() or 1) * 4)
        with ProcessPoolExecutor(
            max_workers=pool_size,
            initializer=_pool_init,
            initargs=(self.device, self.leakage, self.scope),
        ) as pool:
            chunk = max(1, trace_count // (pool_size * 4))
            return list(pool.map(_pool_capture, tasks, chunksize=chunk))

    # -- lane-chunk scheduling helpers ---------------------------------
    def _lane_tasks(
        self,
        trace_count: int,
        coeffs_per_trace: int,
        first_seed: int,
        entropy: int,
        lanes: Optional[int],
        extra: tuple = (),
    ) -> List[tuple]:
        width = self.lanes if lanes is None else int(lanes)
        if width < 1:
            raise ValueError(f"lanes must be >= 1, got {width}")
        seeds = [first_seed + i for i in range(trace_count)]
        return [
            (tuple(seeds[i : i + width]), coeffs_per_trace, entropy) + extra
            for i in range(0, trace_count, width)
        ]

    def _run_lane_tasks(
        self, tasks, workers, pool_fn, serial_fn, segmentation=None
    ) -> List[list]:
        if workers is None or workers <= 1 or len(tasks) <= 1:
            return [serial_fn(task) for task in tasks]
        pool_size = min(workers, len(tasks), (os.cpu_count() or 1) * 4)
        if segmentation is None:
            initializer = _pool_init
            initargs = (self.device, self.leakage, self.scope)
        else:
            initializer = _pool_init_segmented
            initargs = (self.device, self.leakage, self.scope) + segmentation
        with ProcessPoolExecutor(
            max_workers=pool_size,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            chunk = max(1, len(tasks) // (pool_size * 4))
            return list(pool.map(pool_fn, tasks, chunksize=chunk))

    def capture_segmented_batch(
        self,
        trace_count: int,
        coeffs_per_trace: int = 1,
        first_seed: int = 1,
        workers: Optional[int] = None,
        segmenter=None,
        refiner=None,
        engine: Optional[str] = None,
        lanes: Optional[int] = None,
    ) -> Iterator[SegmentedCapture]:
        """Capture and segment in the workers; yield only aligned slices.

        The campaign-scale acquisition path: each worker runs
        ``capture -> segment -> slice extraction`` locally and ships back
        a :class:`SegmentedCapture` — an ``(n_coeffs, slice_length)``
        slice matrix plus labels, a few KB — instead of the full
        multi-hundred-k-sample trace.  Slices are bit-identical to
        segmenting the same capture in the parent (same code, same
        per-seed noise), in any pool completion order; results are
        yielded lazily in seed order so the caller can accumulate
        streaming statistics without holding the batch in memory.

        ``segmenter`` is required (an :class:`~repro.attack.segmentation.
        Segmenter`); ``refiner`` is the optional anchor refiner learned
        during profiling pass 1.
        """
        if segmenter is None:
            raise ValueError("capture_segmented_batch requires a segmenter")
        entropy = self.batch_entropy()
        engine = resolve_engine(engine if engine is not None else self.engine)
        if engine == "lanes":
            lane_tasks = self._lane_tasks(
                trace_count, coeffs_per_trace, first_seed, entropy, lanes
            )
            chunks = self._run_lane_tasks(
                lane_tasks, workers, _pool_segment_lanes,
                lambda task: _segment_lane_chunk(
                    self.device, self.leakage, self.scope, segmenter, refiner,
                    list(task[0]), *task[1:],
                ),
                segmentation=(segmenter, refiner),
            )
            for chunk in chunks:
                yield from chunk
            return
        tasks = [
            (first_seed + i, coeffs_per_trace, entropy, engine)
            for i in range(trace_count)
        ]
        if workers is None or workers <= 1 or trace_count <= 1:
            for task in tasks:
                yield _segment_one(
                    self.device, self.leakage, self.scope, segmenter, refiner, *task
                )
            return
        pool_size = min(workers, trace_count, (os.cpu_count() or 1) * 4)
        with ProcessPoolExecutor(
            max_workers=pool_size,
            initializer=_pool_init_segmented,
            initargs=(self.device, self.leakage, self.scope, segmenter, refiner),
        ) as pool:
            chunk = max(1, trace_count // (pool_size * 4))
            yield from pool.map(_pool_capture_segmented, tasks, chunksize=chunk)
