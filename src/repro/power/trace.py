"""Power-trace containers (with ``.npz`` persistence for campaigns)."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.errors import ParameterError


@dataclass
class Trace:
    """One power measurement: a 1-D sample vector plus metadata."""

    samples: np.ndarray
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=np.float64)
        if self.samples.ndim != 1:
            raise ParameterError("trace samples must be one-dimensional")

    def __len__(self) -> int:
        return len(self.samples)

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace view with inherited metadata."""
        return Trace(self.samples[start:stop], dict(self.metadata))


class TraceSet:
    """A labelled collection of equal-length traces (profiling corpus)."""

    def __init__(self) -> None:
        self._traces: List[np.ndarray] = []
        self._labels: List[int] = []

    def add(self, samples: np.ndarray, label: int) -> None:
        """Append one trace with its class label."""
        samples = np.asarray(samples, dtype=np.float64)
        if self._traces and samples.shape != self._traces[0].shape:
            raise ParameterError(
                f"trace length {samples.shape} does not match set {self._traces[0].shape}"
            )
        self._traces.append(samples)
        self._labels.append(int(label))

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def labels(self) -> np.ndarray:
        """Class label per trace."""
        return np.asarray(self._labels, dtype=np.int64)

    def matrix(self) -> np.ndarray:
        """All traces stacked as a (count, length) matrix."""
        if not self._traces:
            raise ParameterError("trace set is empty")
        return np.vstack(self._traces)

    def by_label(self) -> Dict[int, np.ndarray]:
        """Traces grouped per label as (count_label, length) matrices."""
        matrix = self.matrix()
        labels = self.labels
        return {
            int(label): matrix[labels == label] for label in np.unique(labels)
        }

    def classes(self) -> List[int]:
        """Sorted distinct labels."""
        return sorted(set(self._labels))

    def __iter__(self) -> Iterator:
        return iter(zip(self._traces, self._labels))

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the whole corpus to a compressed ``.npz`` archive."""
        if not self._traces:
            raise ParameterError("refusing to save an empty trace set")
        np.savez_compressed(
            Path(path), traces=self.matrix(), labels=self.labels
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceSet":
        """Read a corpus written by :meth:`save`."""
        archive = np.load(Path(path), allow_pickle=False)
        trace_set = cls()
        for row, label in zip(archive["traces"], archive["labels"]):
            trace_set.add(row, int(label))
        return trace_set
