"""Terminal visualisation of power traces (Fig. 3 without matplotlib).

Pure-text rendering so the paper's trace figures can be eyeballed in a
terminal or a CI log: a max-pooled amplitude plot plus optional window
and anchor markers from the segmentation stage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ParameterError

_BLOCKS = " .:-=+*#%@"


def ascii_trace(
    samples: Sequence[float], width: int = 100, height: int = 10
) -> str:
    """Render a trace as a ``height``-row character plot.

    Columns are max-pooled buckets (peaks stay visible - they are the
    point of Fig. 3a); rows are amplitude bands, top row = maximum.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or len(samples) == 0:
        raise ParameterError("need a non-empty 1-D trace")
    if width < 2 or height < 2:
        raise ParameterError("width and height must be >= 2")
    edges = np.linspace(0, len(samples), width + 1).astype(int)
    pooled = np.array(
        [samples[a:b].max() if b > a else samples[min(a, len(samples) - 1)]
         for a, b in zip(edges[:-1], edges[1:])]
    )
    lo, hi = float(pooled.min()), float(pooled.max())
    span = max(hi - lo, 1e-12)
    levels = ((pooled - lo) / span * (height - 1)).round().astype(int)
    rows = []
    for row in range(height - 1, -1, -1):
        line = "".join("█" if level >= row else " " for level in levels)
        rows.append(line)
    return "\n".join(rows)


def ascii_trace_with_windows(
    samples: Sequence[float],
    boundaries: Sequence[int],
    anchors: Optional[Sequence[int]] = None,
    width: int = 100,
    height: int = 10,
) -> str:
    """The amplitude plot plus a marker row: ``|`` boundaries, ``^`` anchors."""
    samples = np.asarray(samples, dtype=np.float64)
    plot = ascii_trace(samples, width=width, height=height)
    scale = width / len(samples)
    marker_row = [" "] * width
    for boundary in boundaries:
        column = min(int(boundary * scale), width - 1)
        marker_row[column] = "|"
    for anchor in anchors or []:
        column = min(int(anchor * scale), width - 1)
        marker_row[column] = "^"
    return plot + "\n" + "".join(marker_row)


def sparkline(samples: Sequence[float], width: int = 60) -> str:
    """A one-line summary using eighth-block characters."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or len(samples) == 0:
        raise ParameterError("need a non-empty 1-D trace")
    blocks = "▁▂▃▄▅▆▇█"
    edges = np.linspace(0, len(samples), width + 1).astype(int)
    pooled = np.array(
        [samples[a:b].mean() if b > a else samples[min(a, len(samples) - 1)]
         for a, b in zip(edges[:-1], edges[1:])]
    )
    lo, hi = float(pooled.min()), float(pooled.max())
    span = max(hi - lo, 1e-12)
    indices = ((pooled - lo) / span * (len(blocks) - 1)).round().astype(int)
    return "".join(blocks[i] for i in indices)
