"""Oscilloscope front-end model.

The paper measures the SAKURA-G's 1-ohm shunt with a PicoScope 6424E at
1 GS/s while the core runs at 1.5 MHz, i.e. hundreds of scope samples
per clock cycle which are effectively averaged per-cycle by the analog
bandwidth.  We therefore model the acquisition chain at one sample per
clock cycle: gain, band limiting (moving average), additive Gaussian
amplifier/quantisation noise and an optional ADC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import new_rng


@dataclass
class Oscilloscope:
    """Acquisition-chain parameters.

    Parameters
    ----------
    noise_std:
        Standard deviation of the additive Gaussian noise, in the same
        unit as the leakage model output (Hamming weights).  This is the
        main knob controlling attack difficulty.
    gain:
        Linear gain applied before quantisation.
    bandwidth_window:
        Length of the moving-average filter modelling the analog
        bandwidth; 1 disables filtering.
    adc_bits:
        When set, quantise to this many bits over the observed range
        (the PicoScope's 8..12-bit vertical resolution).
    """

    noise_std: float = 1.0
    gain: float = 1.0
    bandwidth_window: int = 1
    adc_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise ParameterError("noise_std must be non-negative")
        if self.bandwidth_window < 1:
            raise ParameterError("bandwidth_window must be >= 1")
        if self.adc_bits is not None and not (4 <= self.adc_bits <= 16):
            raise ParameterError("adc_bits must be in [4, 16]")

    def capture(self, samples: np.ndarray, rng=None) -> np.ndarray:
        """Apply the acquisition chain to noiseless leakage samples."""
        rng = new_rng(rng)
        out = np.asarray(samples, dtype=np.float64) * self.gain
        if self.bandwidth_window > 1:
            kernel = np.ones(self.bandwidth_window) / self.bandwidth_window
            out = np.convolve(out, kernel, mode="same")
        if self.noise_std > 0:
            out = out + rng.normal(0.0, self.noise_std, out.shape)
        if self.adc_bits is not None:
            lo, hi = float(out.min()), float(out.max())
            span = max(hi - lo, 1e-9)
            levels = (1 << self.adc_bits) - 1
            out = np.round((out - lo) / span * levels) / levels * span + lo
        return out
