"""Oscilloscope front-end model.

The paper measures the SAKURA-G's 1-ohm shunt with a PicoScope 6424E at
1 GS/s while the core runs at 1.5 MHz, i.e. hundreds of scope samples
per clock cycle which are effectively averaged per-cycle by the analog
bandwidth.  We therefore model the acquisition chain at one sample per
clock cycle: gain, band limiting (moving average), additive Gaussian
amplifier/quantisation noise and an optional ADC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.power import noise as noise_stream
from repro.utils.rng import new_rng


@dataclass
class Oscilloscope:
    """Acquisition-chain parameters.

    Parameters
    ----------
    noise_std:
        Standard deviation of the additive Gaussian noise, in the same
        unit as the leakage model output (Hamming weights).  This is the
        main knob controlling attack difficulty.
    gain:
        Linear gain applied before quantisation.
    bandwidth_window:
        Length of the moving-average filter modelling the analog
        bandwidth; 1 disables filtering.
    adc_bits:
        When set, quantise to this many bits over the observed range
        (the PicoScope's 8..12-bit vertical resolution).
    """

    noise_std: float = 1.0
    gain: float = 1.0
    bandwidth_window: int = 1
    adc_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise ParameterError("noise_std must be non-negative")
        if self.bandwidth_window < 1:
            raise ParameterError("bandwidth_window must be >= 1")
        if self.adc_bits is not None and not (4 <= self.adc_bits <= 16):
            raise ParameterError("adc_bits must be in [4, 16]")

    def _front_end(
        self, samples: np.ndarray, out: Optional[np.ndarray]
    ) -> np.ndarray:
        """Gain + band limiting, writing into ``out`` when provided.

        ``out=`` is the in-place path: the buffer (which may be
        ``samples`` itself) is reused through the whole chain, so one
        capture costs zero intermediate allocations instead of the two
        full-trace copies of the historical out-of-place expressions.
        """
        if out is None:
            out = np.asarray(samples, dtype=np.float64) * self.gain
        else:
            if out is not samples:
                np.multiply(samples, self.gain, out=out)
            else:
                out *= self.gain
        if self.bandwidth_window > 1:
            kernel = np.ones(self.bandwidth_window) / self.bandwidth_window
            out[:] = np.convolve(out, kernel, mode="same")
        return out

    def _quantize(self, out: np.ndarray) -> None:
        """Optional ADC, in place over the observed range."""
        if self.adc_bits is not None and out.size:
            lo, hi = float(out.min()), float(out.max())
            span = max(hi - lo, 1e-9)
            levels = (1 << self.adc_bits) - 1
            out[:] = np.round((out - lo) / span * levels) / levels * span + lo

    def capture(self, samples: np.ndarray, rng=None, out=None) -> np.ndarray:
        """Apply the acquisition chain to noiseless leakage samples.

        Noise comes from ``rng``'s sequential stream (the historical
        v1 contract, kept for the ``capture_reference`` path and
        single ad-hoc captures).  ``out=`` runs the chain in place.
        """
        rng = new_rng(rng)
        out = self._front_end(samples, out)
        if self.noise_std > 0:
            out += rng.normal(0.0, self.noise_std, out.shape)
        self._quantize(out)
        return out

    def capture_keyed(
        self, samples: np.ndarray, entropy: int, seed: int, out=None
    ) -> np.ndarray:
        """The noise-stream-v2 acquisition chain for one trace.

        Identical to :meth:`capture` except the Gaussian noise is the
        counter-based ``(entropy, seed)``-keyed stream of
        :mod:`repro.power.noise`, so the result is a pure function of
        its arguments — the per-trace path of the batch contract.
        """
        out = self._front_end(samples, out)
        noise_stream.add_noise(out, entropy, seed, self.noise_std)
        self._quantize(out)
        return out

    def capture_batch(
        self,
        flat: np.ndarray,
        bounds: np.ndarray,
        entropy: int,
        seeds: Sequence[int],
    ) -> np.ndarray:
        """Apply the chain in place to a whole lane-major sample arena.

        ``flat`` holds every lane's noiseless samples back to back;
        ``bounds[i]:bounds[i+1]`` is lane ``i``'s region and ``seeds[i]``
        keys its noise stream.  The gain is one whole-arena multiply;
        band limiting, noise and the ADC (whose reference range is
        per-trace) run per lane *slice*, still in place.  Every float64
        op matches :meth:`capture_keyed` on the lane's slice alone, so
        the fused batch is bit-identical to per-trace captures.
        """
        if len(seeds) != len(bounds) - 1:
            raise ParameterError(
                f"capture_batch got {len(seeds)} seeds for "
                f"{len(bounds) - 1} lane regions"
            )
        if self.gain != 1.0:
            flat *= self.gain
        if self.bandwidth_window > 1:
            kernel = np.ones(self.bandwidth_window) / self.bandwidth_window
            for lane in range(len(seeds)):
                lo, hi = int(bounds[lane]), int(bounds[lane + 1])
                flat[lo:hi] = np.convolve(flat[lo:hi], kernel, mode="same")
        for lane, seed in enumerate(seeds):
            lo, hi = int(bounds[lane]), int(bounds[lane + 1])
            view = flat[lo:hi]
            noise_stream.add_noise(view, entropy, seed, self.noise_std)
            self._quantize(view)
        return flat
