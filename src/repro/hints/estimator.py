"""Hardness estimation: from a DBDD instance to a BKZ block size.

Follows the Dachman-Soled et al. methodology: homogenise and isotropise
the DBDD instance, then find the smallest (real) block size ``beta``
for which BKZ solves the resulting uSVP under the geometric series
assumption:

    sqrt(beta) <= delta_beta^(2*beta - dim - 1) * Vol^(1/dim)

where ``Vol`` is the isotropised volume ``Vol(Lambda) / sqrt(det
Sigma)`` and ``dim`` includes the homogenisation coordinate.  The
returned ``beta`` is fractional (the paper reports e.g. 382.25); bit
security is ``beta / 2.98`` per the paper's footnote 3.
"""

from __future__ import annotations

import math

from repro.errors import HintError
from repro.lattice.gsa import log_bkz_delta

#: The paper's bikz -> bits conversion ("bikz corresponds to 2.98x of
#: the bit-level security"; 382.25 bikz <-> 128 bits).
BIKZ_PER_BIT = 2.98

#: Smallest block size the asymptotic delta formula is meaningful for.
MIN_BETA = 2.0


def _success_margin(beta: float, dim: int, log_iso_vol: float) -> float:
    """log RHS - log LHS of the uSVP success condition (>= 0: success)."""
    return (
        (2.0 * beta - dim - 1.0) * log_bkz_delta(beta)
        + log_iso_vol / dim
        - 0.5 * math.log(beta)
    )


def beta_for_usvp(dim: int, log_iso_vol: float) -> float:
    """Smallest (fractional) beta solving the isotropised uSVP.

    Parameters
    ----------
    dim:
        Dimension of the homogenised instance.
    log_iso_vol:
        ``ln(Vol(Lambda)) - 0.5 * ln(det Sigma)``.

    Returns ``MIN_BETA`` when even trivial reduction succeeds and
    ``dim`` when no block size does (the instance gained nothing).
    """
    if dim < 2:
        raise HintError(f"dimension must be >= 2, got {dim}")
    if _success_margin(MIN_BETA, dim, log_iso_vol) >= 0:
        return MIN_BETA
    if _success_margin(float(dim), dim, log_iso_vol) < 0:
        return float(dim)
    lo, hi = MIN_BETA, float(dim)
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if _success_margin(mid, dim, log_iso_vol) >= 0:
            hi = mid
        else:
            lo = mid
    return hi


def beta_for_usvp_simulated(dim: int, log_iso_vol: float) -> int:
    """Simulator-based cross-check of :func:`beta_for_usvp`.

    Instead of the closed-form GSA intersection, runs the lightweight
    BKZ profile simulator of :mod:`repro.lattice.gsa` and declares
    success when the projected target length ``sqrt(beta)`` falls below
    the simulated ``||b*_{d-beta}||``.  Integer output; used by the
    estimator-ablation benchmark.
    """
    import math as _math

    from repro.lattice.gsa import gsa_log_profile, simulate_bkz_profile

    if dim < 2:
        raise HintError(f"dimension must be >= 2, got {dim}")

    def succeeds(beta: int) -> bool:
        start = gsa_log_profile(dim, log_iso_vol, beta=40)
        profile = simulate_bkz_profile(start, beta=max(beta, 30), tours=12)
        index = max(dim - beta, 0)
        return 0.5 * _math.log(beta) <= profile[index]

    lo, hi = 30, dim
    if succeeds(lo):
        return lo
    if not succeeds(hi):
        return dim
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if succeeds(mid):
            hi = mid
        else:
            lo = mid
    return hi


def beta_for_dbdd(instance) -> float:
    """Block-size estimate for any object exposing the DBDD interface.

    The instance must provide ``homogenised_dim()`` and
    ``log_isotropic_volume()`` (both DBDD classes do).
    """
    return beta_for_usvp(instance.homogenised_dim(), instance.log_isotropic_volume())


def bikz_to_bits(beta: float) -> float:
    """Bit security corresponding to a bikz value (paper's conversion).

    >>> round(bikz_to_bits(382.25), 1)
    128.3
    >>> round(bikz_to_bits(12.2), 1)
    4.1
    """
    return beta / BIKZ_PER_BIT
