"""Turning attack output into DBDD hints (section IV-C of the paper).

"The framework takes the scores of each measurement and creates
probabilities for each output ... the probability tables for those
measurements are integrated into the DBDD instance."

Two generators:

- :func:`hints_from_probability_tables` — the full attack: each
  coefficient's template-probability table becomes its posterior
  ``(centered, variance)`` pair (exactly the last two columns of
  Table II); near-zero variance becomes a perfect hint.
- :func:`hints_from_signs` — the branch-only adversary of Table IV:
  a recovered zero is a perfect hint, a recovered sign replaces the
  coordinate's prior with the corresponding half-Gaussian posterior.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import HintError
from repro.hints.dbdd import CoordinateDbdd

#: Posterior variances below this are "probability ~ 1" perfect hints
#: (the paper: "some possibilities rounded up to 1 ... because of the
#: floating-point precision").
PERFECT_VARIANCE_THRESHOLD = 1e-6


@dataclass(frozen=True)
class CoefficientHint:
    """Posterior knowledge about one error coefficient."""

    index: int
    centered: float  # posterior mean (Table II "centered" column)
    variance: float  # posterior variance (Table II "variance" column)

    @property
    def is_perfect(self) -> bool:
        """True when the measurement determines the coefficient."""
        return self.variance <= PERFECT_VARIANCE_THRESHOLD


def moments_of_table(table: Dict[int, float]) -> Tuple[float, float]:
    """Mean and variance of a value -> probability table.

    >>> moments_of_table({1: 0.5, -1: 0.5})
    (0.0, 1.0)
    """
    if not table:
        raise HintError("empty probability table")
    total = sum(table.values())
    if not math.isclose(total, 1.0, rel_tol=1e-6):
        raise HintError(f"probability table sums to {total}, expected 1")
    mean = sum(v * p for v, p in table.items())
    variance = sum((v - mean) ** 2 * p for v, p in table.items())
    return mean, variance


def hints_from_probability_tables(
    tables: Sequence[Dict[int, float]]
) -> List[CoefficientHint]:
    """One hint per coefficient from the attack's probability tables."""
    hints = []
    for index, table in enumerate(tables):
        mean, variance = moments_of_table(table)
        hints.append(CoefficientHint(index, mean, variance))
    return hints


# ----------------------------------------------------------------------
# Branch-only adversary (Table IV)
# ----------------------------------------------------------------------
def sign_conditional_moments(
    sigma: float, sign: int, max_deviation: int = 41
) -> Tuple[float, float]:
    """Posterior moments of a discrete Gaussian conditioned on its sign.

    For ``sign=0`` the coefficient is known exactly.  For ``sign=+-1``
    the posterior is the renormalised positive/negative half of the
    rounded Gaussian.

    >>> mean, var = sign_conditional_moments(3.2, 1)
    >>> 2.5 < mean < 3.2 and 3.0 < var < 3.8
    True
    """
    if sign == 0:
        return 0.0, 0.0
    weights = {
        k: math.exp(-(k**2) / (2 * sigma**2)) for k in range(1, max_deviation + 1)
    }
    total = sum(weights.values())
    mean = sum(k * w for k, w in weights.items()) / total
    second = sum(k * k * w for k, w in weights.items()) / total
    variance = second - mean**2
    return (mean if sign > 0 else -mean), variance


def hints_from_signs(
    signs: Sequence[int], sigma: float, max_deviation: int = 41
) -> List[CoefficientHint]:
    """Branch-only hints: zeros become perfect, signs become posteriors."""
    positive = sign_conditional_moments(sigma, 1, max_deviation)
    negative = sign_conditional_moments(sigma, -1, max_deviation)
    hints = []
    for index, sign in enumerate(signs):
        if sign == 0:
            hints.append(CoefficientHint(index, 0.0, 0.0))
        elif sign > 0:
            hints.append(CoefficientHint(index, positive[0], positive[1]))
        else:
            hints.append(CoefficientHint(index, negative[0], negative[1]))
    return hints


# ----------------------------------------------------------------------
# Integration
# ----------------------------------------------------------------------
def apply_hints(
    dbdd: CoordinateDbdd,
    hints: Iterable[CoefficientHint],
    coordinate_offset: int,
) -> CoordinateDbdd:
    """Integrate coefficient hints into a DBDD instance.

    ``coordinate_offset`` maps error-coefficient index i to DBDD
    coordinate ``offset + i`` (n for the standard embedding where the
    secret occupies the first n coordinates).
    """
    for hint in hints:
        coordinate = coordinate_offset + hint.index
        if hint.is_perfect:
            dbdd.integrate_perfect_hint(coordinate, hint.centered)
        else:
            dbdd.integrate_aposteriori_hint(
                coordinate, hint.centered, hint.variance
            )
    return dbdd


def apply_guesses(
    dbdd: CoordinateDbdd,
    hints: Sequence[CoefficientHint],
    coordinate_offset: int,
    count: int,
) -> List[CoefficientHint]:
    """Guess the ``count`` most-confident unresolved coefficients.

    Reproduces Table IV's "hints & guesses" row: the adversary turns its
    best remaining approximate hints into perfect ones by guessing the
    most likely value; the success probability of the combined guess is
    tracked by the caller.  Returns the guessed hints.
    """
    candidates = sorted(
        (h for h in hints if not h.is_perfect), key=lambda h: h.variance
    )
    guessed = []
    for hint in candidates[:count]:
        dbdd.integrate_perfect_hint(
            coordinate_offset + hint.index, round(hint.centered)
        )
        guessed.append(hint)
    return guessed
