"""LWE with side information: the DBDD estimator of Dachman-Soled et al.

This package reproduces the paper's section IV-C: side-channel
measurements become *hints* integrated into a distorted bounded distance
decoding (DBDD) instance, whose hardness is then reported as the BKZ
block size ("bikz") required by the primal attack; bit security is
``bikz / 2.98`` as in the paper.

- :mod:`repro.hints.dbdd` — DBDD instances: a general full-covariance
  implementation supporting perfect / modular / approximate /
  short-vector hints, and a fast diagonal implementation for
  coordinate hints at full SEAL scale;
- :mod:`repro.hints.estimator` — GSA-intersection beta estimate;
- :mod:`repro.hints.hintgen` — turning the attack's probability tables
  (Table II) and sign information into hints;
- :mod:`repro.hints.security` — the SEAL-128 instances and the paper's
  reference numbers.
"""

from repro.hints.dbdd import CoordinateDbdd, DbddInstance
from repro.hints.estimator import beta_for_dbdd, beta_for_usvp, bikz_to_bits
from repro.hints.hintgen import (
    CoefficientHint,
    hints_from_probability_tables,
    hints_from_signs,
    sign_conditional_moments,
)
from repro.hints.security import (
    PAPER_BIKZ_BRANCH_ONLY,
    PAPER_BIKZ_NO_HINTS,
    PAPER_BIKZ_WITH_HINTS,
    seal_128_dbdd,
    seal_128_parameters,
)

__all__ = [
    "CoefficientHint",
    "CoordinateDbdd",
    "DbddInstance",
    "PAPER_BIKZ_BRANCH_ONLY",
    "PAPER_BIKZ_NO_HINTS",
    "PAPER_BIKZ_WITH_HINTS",
    "beta_for_dbdd",
    "beta_for_usvp",
    "bikz_to_bits",
    "hints_from_probability_tables",
    "hints_from_signs",
    "seal_128_dbdd",
    "seal_128_parameters",
    "sign_conditional_moments",
]
