"""Distorted bounded distance decoding (DBDD) instances.

Two implementations of the Dachman-Soled et al. framework:

- :class:`DbddInstance` keeps the full covariance matrix and supports
  all four hint types of the paper on arbitrary vectors (perfect,
  modular, approximate, short-vector).  Cost is O(d^2) per hint - fine
  up to a few thousand dimensions, and exhaustively testable at small d.
- :class:`CoordinateDbdd` is the fast path for the attack's coordinate
  hints: the covariance stays diagonal, so integration is O(1) per
  hint and the SEAL-128 instance (d = 2049) is instant.

Both expose ``homogenised_dim()`` / ``log_isotropic_volume()`` consumed
by :func:`repro.hints.estimator.beta_for_dbdd`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import HintError

#: Variances below this are treated as "already known" directions.
_VARIANCE_FLOOR = 1e-9


class DbddInstance:
    """Full-covariance DBDD instance over ``dim`` secret coordinates.

    Parameters
    ----------
    mean / covariance:
        Prior distribution of the secret vector (error and secret
        coordinates of the embedded LWE instance).
    log_lattice_volume:
        ``ln Vol(Lambda)`` of the embedding lattice (``m ln q`` for an
        LWE instance with m samples).
    """

    def __init__(
        self,
        mean: Sequence[float],
        covariance: np.ndarray,
        log_lattice_volume: float,
    ) -> None:
        self.mu = np.asarray(mean, dtype=np.float64).copy()
        self.sigma = np.asarray(covariance, dtype=np.float64).copy()
        if self.sigma.shape != (len(self.mu), len(self.mu)):
            raise HintError("covariance shape does not match mean length")
        self.log_volume = float(log_lattice_volume)
        #: directions already fixed by perfect hints (dim reduction count)
        self.perfect_hint_count = 0
        self.hint_log: List[str] = []

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of secret coordinates (before homogenisation)."""
        return len(self.mu)

    def homogenised_dim(self) -> int:
        """Dimension fed to the uSVP estimate (+1 homogenisation)."""
        return self.dim - self.perfect_hint_count + 1

    def log_det_sigma(self) -> float:
        """ln det of the covariance restricted to its support."""
        eigenvalues = np.linalg.eigvalsh(self.sigma)
        support = eigenvalues[eigenvalues > _VARIANCE_FLOOR]
        expected_rank = self.dim - self.perfect_hint_count
        if len(support) != expected_rank:
            raise HintError(
                f"covariance rank {len(support)} != expected {expected_rank}"
            )
        return float(np.sum(np.log(support)))

    def log_isotropic_volume(self) -> float:
        """``ln Vol(Lambda') - 0.5 ln det Sigma`` after all hints."""
        return self.log_volume - 0.5 * self.log_det_sigma()

    # ------------------------------------------------------------------
    def _check_vector(self, v: Sequence[float]) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.dim,):
            raise HintError(f"hint vector must have length {self.dim}")
        if not v.any():
            raise HintError("hint vector must be nonzero")
        return v

    def integrate_perfect_hint(self, v: Sequence[int], value: float) -> None:
        """``<s, v> = value`` exactly.

        Conditions the distribution on the hyperplane and shrinks the
        lattice: ``Vol' = Vol * ||v||`` for a primitive integer v, and
        the homogenised dimension drops by one.
        """
        v = self._check_vector(v)
        sigma_v = self.sigma @ v
        variance = float(v @ sigma_v)
        if variance <= _VARIANCE_FLOOR:
            raise HintError("direction already determined (redundant perfect hint)")
        gap = value - float(v @ self.mu)
        self.mu = self.mu + (gap / variance) * sigma_v
        self.sigma = self.sigma - np.outer(sigma_v, sigma_v) / variance
        self.log_volume += math.log(float(np.linalg.norm(v)))
        self.perfect_hint_count += 1
        self.hint_log.append(f"perfect <s,v>={value}")

    def integrate_approximate_hint(
        self, v: Sequence[int], value: float, noise_variance: float
    ) -> None:
        """``<s, v> = value + e`` with ``e ~ N(0, noise_variance)``.

        Bayesian conditioning of the Gaussian prior; the lattice is
        unchanged.
        """
        if noise_variance <= 0:
            raise HintError("noise_variance must be positive (else use a perfect hint)")
        v = self._check_vector(v)
        sigma_v = self.sigma @ v
        variance = float(v @ sigma_v) + noise_variance
        gap = value - float(v @ self.mu)
        self.mu = self.mu + (gap / variance) * sigma_v
        self.sigma = self.sigma - np.outer(sigma_v, sigma_v) / variance
        self.hint_log.append(f"approx <s,v>={value} var={noise_variance}")

    def integrate_modular_hint(self, v: Sequence[int], value: int, modulus: int) -> None:
        """``<s, v> = value mod k`` in the smooth regime.

        Valid when ``k`` is small compared to the deviation of
        ``<s, v>`` (the hint then densifies the lattice without
        significantly changing the distribution), which is the regime
        the paper's framework uses by default.
        """
        if modulus < 2:
            raise HintError("modulus must be >= 2")
        v = self._check_vector(v)
        deviation = math.sqrt(float(v @ self.sigma @ v))
        if deviation < modulus:
            raise HintError(
                f"modular hint outside the smooth regime (sigma {deviation:.2f} < k {modulus}); "
                "use a perfect hint instead"
            )
        self.log_volume += math.log(modulus)
        self.hint_log.append(f"modular <s,v>={value} mod {modulus}")

    def integrate_short_vector_hint(self, v: Sequence[int]) -> None:
        """``v`` is in the lattice: project it out (sublattice switch).

        Used by the framework for e.g. dropping q-vectors.  Requires the
        direction not to carry secret information (covariance is
        projected).
        """
        v = self._check_vector(v)
        norm = float(np.linalg.norm(v))
        projector = np.eye(self.dim) - np.outer(v, v) / (norm**2)
        self.mu = projector @ self.mu
        self.sigma = projector @ self.sigma @ projector.T
        self.log_volume -= math.log(norm)
        self.perfect_hint_count += 1  # rank drops by one
        self.hint_log.append("short-vector")

    # ------------------------------------------------------------------
    def estimate_beta(self) -> float:
        """Convenience wrapper around the estimator."""
        from repro.hints.estimator import beta_for_dbdd

        return beta_for_dbdd(self)


class CoordinateDbdd:
    """Diagonal-covariance DBDD for coordinate hints (the fast path).

    The attack's hints are all of the form ``s_i = value (+ noise)``:
    unit-vector hints keep the covariance diagonal, so each coordinate
    carries (center, variance) and hint integration is O(1).
    """

    def __init__(
        self,
        variances: Sequence[float],
        log_lattice_volume: float,
        centers: Optional[Sequence[float]] = None,
    ) -> None:
        self.variances = np.asarray(variances, dtype=np.float64).copy()
        if (self.variances <= 0).any():
            raise HintError("all prior variances must be positive")
        self.centers = (
            np.zeros_like(self.variances)
            if centers is None
            else np.asarray(centers, dtype=np.float64).copy()
        )
        self.active = np.ones(len(self.variances), dtype=bool)
        self.log_volume = float(log_lattice_volume)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Total coordinates (active + fixed)."""
        return len(self.variances)

    def homogenised_dim(self) -> int:
        """Active coordinates + 1 (homogenisation)."""
        return int(self.active.sum()) + 1

    def log_det_sigma(self) -> float:
        """ln det over the active coordinates."""
        return float(np.sum(np.log(self.variances[self.active])))

    def log_isotropic_volume(self) -> float:
        """``ln Vol - 0.5 ln det Sigma``."""
        return self.log_volume - 0.5 * self.log_det_sigma()

    # ------------------------------------------------------------------
    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.dim):
            raise HintError(f"coordinate {index} out of range")
        if not self.active[index]:
            raise HintError(f"coordinate {index} already fixed by a perfect hint")

    def integrate_perfect_hint(self, index: int, value: float) -> None:
        """``s_index = value`` exactly (unit hint vector: volume unchanged)."""
        self._check_index(index)
        self.active[index] = False
        self.centers[index] = value

    def integrate_aposteriori_hint(
        self, index: int, center: float, variance: float
    ) -> None:
        """Replace coordinate ``index``'s distribution with the attack's
        posterior (the framework's *a posteriori* approximate hints: the
        measurement's probability table directly gives the new center
        and variance, Table II of the paper)."""
        self._check_index(index)
        if variance <= _VARIANCE_FLOOR:
            self.integrate_perfect_hint(index, center)
            return
        if variance >= self.variances[index]:
            return  # uninformative measurement: keep the prior
        self.variances[index] = variance
        self.centers[index] = center

    def integrate_approximate_hint(
        self, index: int, value: float, noise_variance: float
    ) -> None:
        """``s_index = value + N(0, noise_variance)``: Bayesian update."""
        self._check_index(index)
        if noise_variance <= 0:
            raise HintError("noise_variance must be positive")
        prior = self.variances[index]
        posterior = 1.0 / (1.0 / prior + 1.0 / noise_variance)
        gain = posterior / noise_variance
        self.centers[index] = self.centers[index] + gain * (
            value - self.centers[index]
        )
        self.variances[index] = posterior

    # ------------------------------------------------------------------
    def estimate_beta(self) -> float:
        """Convenience wrapper around the estimator."""
        from repro.hints.estimator import beta_for_dbdd

        return beta_for_dbdd(self)
