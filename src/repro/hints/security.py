"""The paper's SEAL-128 LWE instance and reference bikz numbers.

The smallest SEAL-128 parameter set attacked in the paper:
``q = 132120577, n = 1024, sigma = 3.2``; the encryption sample ``u``
is ternary and the attacked equation is ``c1 = p1 * u + e2`` - a
Ring-LWE instance with n samples, ternary secret and Gaussian error,
embedded into dimension ``2n + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log

import numpy as np

from repro.hints.dbdd import CoordinateDbdd

#: Table III / IV reference values from the paper.
PAPER_BIKZ_NO_HINTS = 382.25
PAPER_BIKZ_WITH_HINTS = 12.2
PAPER_BIKZ_BRANCH_ONLY = 253.29
PAPER_BIKZ_BRANCH_AND_GUESS = 252.83


@dataclass(frozen=True)
class LweParameters:
    """An LWE instance's statistical parameters for the estimator."""

    n: int  # secret dimension
    m: int  # number of samples
    q: int  # modulus
    secret_variance: float
    error_sigma: float

    @property
    def error_variance(self) -> float:
        return self.error_sigma**2


def seal_128_parameters(
    error_sigma: float = 3.2, ternary_secret: bool = False
) -> LweParameters:
    """The paper's smallest SEAL-128 set (Table III caption).

    By default the secret (the encryption sample ``u``) is modelled with
    the *same* Gaussian parameter as the error, which is how the
    leaky-LWE-estimator the paper applies treats the instance (and what
    reproduces the paper's 382.25 bikz).  SEAL actually samples ``u``
    ternary (variance 2/3); pass ``ternary_secret=True`` for that
    slightly *easier* exact model (~347 bikz) - the gap is discussed in
    EXPERIMENTS.md.
    """
    secret_variance = 2.0 / 3.0 if ternary_secret else error_sigma**2
    return LweParameters(
        n=1024,
        m=1024,
        q=132120577,
        secret_variance=secret_variance,
        error_sigma=error_sigma,
    )


#: Coefficient-modulus bit sizes of SEAL's n=1024 sets per security
#: level (the 128-bit value is the paper's exact q; the higher levels
#: shrink q, which *raises* the LWE hardness - paper section V-B).
_SECURITY_LEVEL_Q_BITS = {128: 27, 192: 19, 256: 14}


def higher_security_parameters(
    level: int, error_sigma: float = 3.2, ternary_secret: bool = False
) -> LweParameters:
    """SEAL-style n=1024 parameters for a 128/192/256-bit security level.

    The paper (section V-B) notes that "attacking more secure versions
    (192-bit or 256-bit) is likely to be harder"; these instances make
    that quantifiable with the estimator.
    """
    from repro.ring.primes import generate_ntt_primes

    if level not in _SECURITY_LEVEL_Q_BITS:
        raise ValueError(f"level must be one of {sorted(_SECURITY_LEVEL_Q_BITS)}")
    if level == 128:
        return seal_128_parameters(error_sigma, ternary_secret)
    q = generate_ntt_primes(_SECURITY_LEVEL_Q_BITS[level], 1, 1024)[0].value
    secret_variance = 2.0 / 3.0 if ternary_secret else error_sigma**2
    return LweParameters(
        n=1024, m=1024, q=q, secret_variance=secret_variance, error_sigma=error_sigma
    )


def make_dbdd(params: LweParameters) -> CoordinateDbdd:
    """Embed an LWE instance as a coordinate DBDD.

    Coordinate layout: indices ``0..n-1`` are the secret coordinates,
    ``n..n+m-1`` the error coordinates (the ones the trace attack hints
    at).  The embedding lattice has volume ``q^m``.
    """
    variances = np.concatenate(
        [
            np.full(params.n, params.secret_variance),
            np.full(params.m, params.error_variance),
        ]
    )
    return CoordinateDbdd(variances, log_lattice_volume=params.m * log(params.q))


def seal_128_dbdd(error_sigma: float = 3.2) -> CoordinateDbdd:
    """DBDD instance for the paper's attacked parameter set."""
    return make_dbdd(seal_128_parameters(error_sigma))


def error_coordinate(params: LweParameters, index: int) -> int:
    """DBDD coordinate of error coefficient ``index``."""
    if not 0 <= index < params.m:
        raise IndexError(f"error index {index} out of range")
    return params.n + index
