"""RV32IM instruction-set simulator with PicoRV32-like timing.

The paper runs SEAL v3.2 on a PicoRV32 softcore (RV32IM) on a SAKURA-G
FPGA and measures its power.  This package substitutes a cycle-level
instruction-set simulator:

- :mod:`repro.riscv.isa` — RV32IM encodings, encoder and decoder;
- :mod:`repro.riscv.assembler` — a two-pass assembler with labels and
  the usual pseudo-instructions;
- :mod:`repro.riscv.memory` — a flat little-endian RAM;
- :mod:`repro.riscv.cpu` — the interpreter; it records per-instruction
  execution events (operands, results, bus values) that
  :mod:`repro.power` expands into synthetic power traces;
- :mod:`repro.riscv.threaded` — the threaded-code engine: basic blocks
  translated once into direct-dispatch handler chains;
- :mod:`repro.riscv.lanes` — the lane-vectorized engine: many
  independent program copies executed in lock-step over numpy arrays,
  bit-identical per lane to the scalar engines;
- :mod:`repro.riscv.programs` — the Gaussian-sampling kernel in RV32IM
  assembly, mirroring SEAL's ``set_poly_coeffs_normal`` (Fig. 2).
"""

from repro.riscv.assembler import assemble
from repro.riscv.cpu import Cpu, EventLog, ExecutionEvent
from repro.riscv.isa import decode, encode
from repro.riscv.memory import Memory

__all__ = ["Cpu", "EventLog", "ExecutionEvent", "Memory", "assemble", "decode", "encode"]
