"""Compiled C engine: cffi-generated block kernels for the RV32IM core.

The threaded engine (:mod:`repro.riscv.threaded`) already pays its
fetch/decode/dispatch cost once per *block*, but each retired
instruction still executes a line of interpreted Python.  This module
keeps the exact same translation units — superblocks across predicted
branches, loop unrolling, constant folding, the walk and truncation
rules of :func:`repro.riscv.threaded.translate` — and lowers each
:class:`~repro.riscv.threaded.TranslatedBlock` to a C function instead
of a Python one.  The block functions plus a dispatch driver are
compiled into one extension module per program through the same cffi
API-mode toolchain as :mod:`repro.backends.native` (``-O3
-ffp-contract=off``, disk-cached by source SHA in
``$REVEAL_NATIVE_CACHE``), so a given program compiles once per
machine and every later run is a plain extension load.

Execution stays in C — registers, memory, cycle accounting and bulk
:class:`~repro.riscv.cpu.EventLog` row emission — and returns to Python
only at the boundaries the threaded engine already defines:

- **translation miss** (a pc with no compiled block): Python translates
  the block, runs it through the threaded engine's generated function,
  and re-enters C; the new block is queued for the *next* run's compile
  so a mid-run miss never pays gcc.
- **fault** (memory bounds / misalignment): the C side commits the
  retired prefix exactly like the threaded engine's unwind commit and
  reports the fault parameters; Python raises the byte-identical
  :class:`~repro.errors.SimulationError` string.
- **budget exhaustion**: block-granular in C, then
  :meth:`~repro.riscv.cpu.Cpu._run_budget_tail` single-steps the last
  few instructions so the raise lands on exactly the same instruction
  as every other engine.
- **SMC invalidation**: stores check a word-indexed code bitmap that
  covers every known block (compiled *and* pending); a hit retires the
  store, ends the block at ``store_pc + 4`` and drops the compiled
  module — the rest of the run interprets, and the next run recompiles.

Exact-semantics contract: registers, pc, ``cycle_count``,
``instruction_count``, the event log, retire rows and every
``SimulationError`` string are bit-for-bit identical to the reference
interpreter; the ``cpu.retire_log`` conformance fuzz sweeps this engine
against the other three (see :mod:`repro.verify.conformance`).

When no C toolchain (or cffi) is present the engine degrades
gracefully: :func:`compiled_available` records the reason and the
device layer falls back to the threaded engine
(:func:`repro.riscv.device.effective_engine`), matching the backend
registry's capability-probe contract.  ``REVEAL_DISABLE_COMPILED=1``
forces that path for testing.
"""

from __future__ import annotations

import hashlib
import os
import sysconfig
import time
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.riscv import cycles as cy
from repro.riscv.isa import branch_offset, decode, jal_offset
from repro.riscv.threaded import translate

_MASK32 = 0xFFFFFFFF

#: Block-discovery cap per compile: bounds one-time codegen/gcc cost.
MAX_COMPILED_BLOCKS = 512

# ----------------------------------------------------------------------
# C <-> Python protocol
#
# One int64 state array carries everything across the boundary:
#   st[0] pc            st[1] cycle_count      st[2] instruction_count
#   st[3] executed      st[4] budget           st[5] event cursor (rows)
#   st[6] event capacity(rows)                 st[7] halted
#   st[8] fault kind (1=bounds, 2=misaligned)  st[9] fault address
#   st[10] fault width  st[11] memory size     st[12] C block dispatches
# ----------------------------------------------------------------------
STATUS_HALT = 1
STATUS_MISS = 2
STATUS_BUDGET = 3
STATUS_EVENTS = 4
STATUS_FAULT = 5
STATUS_SMC = 6

_ST_SLOTS = 16

_CDEF = (
    "int reveal_run(int64_t *st, uint32_t *regs, uint8_t *mem,"
    " int64_t *ev, const uint8_t *cw, int64_t cw_len);"
)

_HEADER = """\
#include <stdint.h>
#include <string.h>
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
#error "the compiled RV32IM engine requires a little-endian host"
#endif
"""

# ----------------------------------------------------------------------
# Translation-cache statistics (mirrors ring.ntt.ntt_cache_stats)
# ----------------------------------------------------------------------
_STATS: Dict[str, Any] = {
    "hits": 0,  # C block dispatches + Python-cache block hits
    "misses": 0,  # blocks translated on a dispatch miss
    "invalidations": 0,  # compiled modules dropped by SMC
    "compiles": 0,  # module (re)builds, including cache loads
    "compile_time_s": 0.0,  # codegen + gcc (or cache-load) seconds
}

#: In-memory module cache keyed by source digest: re-running a known
#: program (every fuzz replay, every warm device) never re-invokes gcc
#: and never re-reads the disk cache.
_MODULES: Dict[str, Any] = {}


def translation_cache_stats() -> Dict[str, Any]:
    """Hit/miss/invalidation counters plus loaded-module count."""
    stats = dict(_STATS)
    stats["size"] = len(_MODULES)
    stats["max_size"] = MAX_COMPILED_BLOCKS
    return stats


def clear_compiled_stats() -> None:
    """Zero the counters (tests/benchmarks); loaded modules are kept."""
    for key in _STATS:
        _STATS[key] = 0.0 if key == "compile_time_s" else 0


# ----------------------------------------------------------------------
# C code generation, mirroring threaded._emit_instruction case by case
# ----------------------------------------------------------------------
_C_ALU_RR = {
    "add": "a + b",
    "sub": "a - b",
    "and": "a & b",
    "or": "a | b",
    "xor": "a ^ b",
    "sll": "a << (b & 31u)",
    "srl": "a >> (b & 31u)",
    "sra": "(uint32_t)((int32_t)a >> (b & 31u))",
    "slt": "((int32_t)a < (int32_t)b) ? 1u : 0u",
    "sltu": "(a < b) ? 1u : 0u",
    "mul": "a * b",
    "mulh": "(uint32_t)(((int64_t)(int32_t)a * (int64_t)(int32_t)b) >> 32)",
    "mulhsu": "(uint32_t)(((int64_t)(int32_t)a * (int64_t)b) >> 32)",
    "mulhu": "(uint32_t)(((uint64_t)a * (uint64_t)b) >> 32)",
}

_C_BRANCH = {
    "beq": "a == b",
    "bne": "a != b",
    "blt": "(int32_t)a < (int32_t)b",
    "bge": "(int32_t)a >= (int32_t)b",
    "bltu": "a < b",
    "bgeu": "a >= b",
}

_C_BRANCH_INV = {
    "beq": "a != b",
    "bne": "a == b",
    "blt": "(int32_t)a >= (int32_t)b",
    "bge": "(int32_t)a < (int32_t)b",
    "bltu": "a >= b",
    "bgeu": "a < b",
}

_LOAD_WIDTHS = {"lw": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}
_STORE_WIDTHS = {"sw": 4, "sh": 2, "sb": 1}
_BRANCH_MNEMONICS = frozenset(_C_BRANCH)


def _u(value: int) -> str:
    return f"{value & _MASK32:#x}u"


class _CBlock:
    """Accumulates one block function's C source."""

    def __init__(self, start_pc: int) -> None:
        self.name = f"bb_{start_pc:08x}"
        self.lines: List[str] = []
        self.cycles: List[int] = []

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def prefix(self, count: int) -> int:
        return sum(self.cycles[:count])

    def event(
        self,
        indent: str,
        op: str,
        word: int,
        rs1: str,
        rs2: str,
        result: str,
        old: str,
        address: str,
        pc: int,
    ) -> None:
        """One EventLog row, all 8 fields written explicitly."""
        self.emit(f"{indent}if (ev) {{")
        self.emit(f"{indent}    int64_t *e = ev + el * 8;")
        self.emit(
            f"{indent}    e[0] = {op}; e[1] = {word}; e[2] = {rs1};"
            f" e[3] = {rs2};"
        )
        self.emit(
            f"{indent}    e[4] = {result}; e[5] = {old};"
            f" e[6] = {address}; e[7] = {pc};"
        )
        self.emit(f"{indent}    el++;")
        self.emit(f"{indent}}}")

    def commit(
        self,
        indent: str,
        count: int,
        pc_expr: str,
        cycles_expr: str,
        status: int,
        halt: bool = False,
    ) -> None:
        """Commit ``count`` retirements and leave the block."""
        self.emit(f"{indent}st[0] = {pc_expr};")
        if cycles_expr not in ("0", ""):
            self.emit(f"{indent}st[1] += {cycles_expr};")
        if count:
            self.emit(f"{indent}st[2] += {count}; st[3] += {count};")
        if halt:
            self.emit(f"{indent}st[7] = 1;")
        self.emit(f"{indent}if (ev) st[5] = el;")
        self.emit(f"{indent}return {status};")

    def fault(
        self, indent: str, i: int, pc: int, kind: int, width: int
    ) -> None:
        """Fault unwind: instruction ``i`` did not retire (no event)."""
        self.emit(f"{indent}st[0] = {_u(pc)};")
        prefix = self.prefix(i)
        if prefix:
            self.emit(f"{indent}st[1] += {prefix};")
        if i:
            self.emit(f"{indent}st[2] += {i}; st[3] += {i};")
        self.emit(f"{indent}if (ev) st[5] = el;")
        self.emit(
            f"{indent}st[8] = {kind}; st[9] = (int64_t)d;"
            f" st[10] = {width};"
        )
        self.emit(f"{indent}return {STATUS_FAULT};")


def _emit_mem_checks(src: _CBlock, i: int, pc: int, width: int) -> None:
    src.emit(f"        if ((uint64_t)d + {width}u > (uint64_t)msz) {{")
    src.fault("            ", i, pc, 1, width)
    src.emit("        }")
    if width > 1:
        src.emit(f"        if (d & {width - 1}u) {{")
        src.fault("            ", i, pc, 2, width)
        src.emit("        }")


def _emit_c_instruction(
    src: _CBlock,
    i: int,
    ins,
    pc: int,
    continuation: Optional[int],
    length: int,
    fallthrough: int,
) -> None:
    """Append one instruction's C to the block (mirrors threaded's
    ``_emit_instruction`` handler kinds, including the commit shapes)."""
    m = ins.mnemonic
    rd, rs1, rs2, imm, word = ins.rd, ins.rs1, ins.rs2, ins.imm, ins.word
    last = i == length - 1
    src.emit(f"    {{ /* {i}: {pc:#06x} {m} (word {word:#010x}) */")

    if m in _C_ALU_RR:
        op_class = cy.OP_MUL if m.startswith("mul") else cy.OP_ALU
        src.cycles.append(cy.CYCLES[op_class])
        src.emit(f"        const uint32_t a = R[{rs1}], b = R[{rs2}];")
        src.emit(f"        const uint32_t res = {_C_ALU_RR[m]};")
        src.event("        ", str(op_class), word, "a", "b", "res",
                  f"R[{rd}]", "0", pc)
        if rd:
            src.emit(f"        R[{rd}] = res;")
    elif m in ("div", "divu", "rem", "remu"):
        src.cycles.append(cy.CYCLES[cy.OP_DIV])
        src.emit(f"        const uint32_t a = R[{rs1}], b = R[{rs2}];")
        src.emit("        uint32_t res;")
        if m in ("div", "rem"):
            src.emit("        const int32_t sa = (int32_t)a, sb = (int32_t)b;")
            if m == "div":
                src.emit("        if (sb == 0) res = 0xFFFFFFFFu;")
                src.emit(
                    "        else if (a == 0x80000000u && sb == -1)"
                    " res = 0x80000000u;"
                )
                src.emit("        else res = (uint32_t)(sa / sb);")
            else:
                src.emit("        if (sb == 0) res = a;")
                src.emit(
                    "        else if (a == 0x80000000u && sb == -1) res = 0u;"
                )
                src.emit("        else res = (uint32_t)(sa % sb);")
        elif m == "divu":
            src.emit("        res = (b == 0u) ? 0xFFFFFFFFu : (a / b);")
        else:  # remu
            src.emit("        res = (b == 0u) ? a : (a % b);")
        src.event("        ", str(cy.OP_DIV), word, "a", "b", "res",
                  f"R[{rd}]", "0", pc)
        if rd:
            src.emit(f"        R[{rd}] = res;")
    elif m in (
        "addi", "andi", "ori", "xori", "slli", "srli", "srai",
        "slti", "sltiu",
    ):
        src.cycles.append(cy.CYCLES[cy.OP_ALU])
        src.emit(f"        const uint32_t a = R[{rs1}];")
        if m == "addi":
            expr = f"a + {_u(imm)}"
        elif m == "andi":
            expr = f"a & {_u(imm)}"
        elif m == "ori":
            expr = f"a | {_u(imm)}"
        elif m == "xori":
            expr = f"a ^ {_u(imm)}"
        elif m == "slli":
            expr = f"a << {imm}"
        elif m == "srli":
            expr = f"a >> {imm}"
        elif m == "srai":
            expr = f"(uint32_t)((int32_t)a >> {imm})"
        elif m == "slti":
            expr = f"((int32_t)a < {imm}) ? 1u : 0u"
        else:  # sltiu
            expr = f"(a < {_u(imm)}) ? 1u : 0u"
        src.emit(f"        const uint32_t res = {expr};")
        src.event("        ", str(cy.OP_ALU), word, "a", "R[0]", "res",
                  f"R[{rd}]", "0", pc)
        if rd:
            src.emit(f"        R[{rd}] = res;")
    elif m in _LOAD_WIDTHS:
        width = _LOAD_WIDTHS[m]
        src.cycles.append(cy.CYCLES[cy.OP_LOAD])
        src.emit(f"        const uint32_t a = R[{rs1}];")
        src.emit(f"        const uint32_t d = a + {_u(imm)};")
        _emit_mem_checks(src, i, pc, width)
        if m == "lw":
            src.emit("        uint32_t v; memcpy(&v, mem + d, 4);")
            src.emit("        const uint32_t res = v;")
        elif m == "lhu":
            src.emit("        uint16_t v; memcpy(&v, mem + d, 2);")
            src.emit("        const uint32_t res = v;")
        elif m == "lh":
            src.emit("        int16_t v; memcpy(&v, mem + d, 2);")
            src.emit("        const uint32_t res = (uint32_t)(int32_t)v;")
        elif m == "lbu":
            src.emit("        const uint32_t res = mem[d];")
        else:  # lb
            src.emit(
                "        const uint32_t res ="
                " (uint32_t)(int32_t)(int8_t)mem[d];"
            )
        src.event("        ", str(cy.OP_LOAD), word, "a", "R[0]", "res",
                  f"R[{rd}]", "(int64_t)d", pc)
        if rd:
            src.emit(f"        R[{rd}] = res;")
    elif m in _STORE_WIDTHS:
        width = _STORE_WIDTHS[m]
        src.cycles.append(cy.CYCLES[cy.OP_STORE])
        src.emit(f"        const uint32_t a = R[{rs1}], b = R[{rs2}];")
        src.emit(f"        const uint32_t d = a + {_u(imm)};")
        _emit_mem_checks(src, i, pc, width)
        if m == "sw":
            src.emit("        memcpy(mem + d, &b, 4);")
            src.emit("        const uint32_t res = b;")
        elif m == "sh":
            src.emit("        const uint16_t h = (uint16_t)b;")
            src.emit("        memcpy(mem + d, &h, 2);")
            src.emit("        const uint32_t res = b & 0xFFFFu;")
        else:  # sb
            src.emit("        mem[d] = (uint8_t)b;")
            src.emit("        const uint32_t res = b & 0xFFu;")
        src.event("        ", str(cy.OP_STORE), word, "a", "b", "res",
                  "R[0]", "(int64_t)d", pc)
        # Self-modifying-code guard: the bitmap covers every pc of every
        # known block (compiled or pending), a superset of the threaded
        # engine's live _code_words — extra early block-ends are
        # architecturally invisible; missed invalidations are impossible.
        src.emit("        {")
        src.emit("            const uint32_t wa = d >> 2;")
        src.emit("            if ((int64_t)wa < cwn && cw[wa]) {")
        src.commit(
            "                ", i + 1, _u(pc + 4), str(src.prefix(i + 1)),
            STATUS_SMC,
        )
        src.emit("            }")
        src.emit("        }")
    elif m in _BRANCH_MNEMONICS:
        taken = (pc + imm) & _MASK32
        base = src.prefix(i)
        src.emit(f"        const uint32_t a = R[{rs1}], b = R[{rs2}];")
        if continuation is None:
            # Block terminator: both directions leave the block.
            src.cycles.append(0)  # accounted in the arms below
            src.emit(f"        if ({_C_BRANCH[m]}) {{")
            src.event("            ", str(cy.OP_BRANCH_TAKEN), word, "a",
                      "b", _u(taken), "R[0]", "0", pc)
            src.commit(
                "            ", length, _u(taken),
                str(base + cy.CYCLES[cy.OP_BRANCH_TAKEN]), 0,
            )
            src.emit("        } else {")
            src.event("            ", str(cy.OP_BRANCH_NOT_TAKEN), word,
                      "a", "b", _u(pc + 4), "R[0]", "0", pc)
            src.commit(
                "            ", length, _u(pc + 4),
                str(base + cy.CYCLES[cy.OP_BRANCH_NOT_TAKEN]), 0,
            )
            src.emit("        }")
            src.emit("    }")
            return
        # Superblock interior: side-exit the unpredicted direction.
        if continuation == taken:
            exit_cond, exit_class, exit_pc = (
                _C_BRANCH_INV[m], cy.OP_BRANCH_NOT_TAKEN, pc + 4,
            )
            cont_class = cy.OP_BRANCH_TAKEN
        else:
            exit_cond, exit_class, exit_pc = (
                _C_BRANCH[m], cy.OP_BRANCH_TAKEN, taken,
            )
            cont_class = cy.OP_BRANCH_NOT_TAKEN
        src.emit(f"        if ({exit_cond}) {{")
        src.event("            ", str(exit_class), word, "a", "b",
                  _u(exit_pc), "R[0]", "0", pc)
        src.commit(
            "            ", i + 1, _u(exit_pc),
            str(base + cy.CYCLES[exit_class]), 0,
        )
        src.emit("        }")
        src.event("        ", str(cont_class), word, "a", "b",
                  _u(continuation), "R[0]", "0", pc)
        src.cycles.append(cy.CYCLES[cont_class])
    elif m == "jal":
        src.cycles.append(cy.CYCLES[cy.OP_JUMP])
        src.emit(f"        const uint32_t res = {_u(pc + 4)};")
        src.event("        ", str(cy.OP_JUMP), word, "R[0]", "R[0]",
                  "res", f"R[{rd}]", "0", pc)
        if rd:
            src.emit(f"        R[{rd}] = res;")
    elif m == "jalr":
        src.cycles.append(cy.CYCLES[cy.OP_JUMP])
        src.emit(f"        const uint32_t a = R[{rs1}];")
        src.emit(f"        const uint32_t res = {_u(pc + 4)};")
        src.event("        ", str(cy.OP_JUMP), word, "a", "R[0]", "res",
                  f"R[{rd}]", "0", pc)
        if rd:
            src.emit(f"        R[{rd}] = res;")
        src.emit(
            f"        const uint32_t npc = (a + {_u(imm)}) & 0xFFFFFFFEu;"
        )
        src.commit("        ", length, "npc", str(src.prefix(length)), 0)
    elif m in ("lui", "auipc"):
        src.cycles.append(cy.CYCLES[cy.OP_ALU])
        if m == "lui":
            result = (imm << 12) & _MASK32
        else:
            result = (pc + (imm << 12)) & _MASK32
        src.emit(f"        const uint32_t res = {_u(result)};")
        # op class stays 0 (OP_ALU), like the reference engine.
        src.event("        ", "0", word, "R[0]", "R[0]", "res",
                  f"R[{rd}]", "0", pc)
        if rd:
            src.emit(f"        R[{rd}] = res;")
    elif m in ("ebreak", "ecall"):
        src.cycles.append(cy.CYCLES[cy.OP_SYSTEM])
        src.event("        ", str(cy.OP_SYSTEM), word, "R[0]", "R[0]",
                  "0", "R[0]", "0", pc)
        src.commit(
            "        ", length, _u(pc + 4), str(src.prefix(length)),
            STATUS_HALT, halt=True,
        )
    else:  # pragma: no cover - decode() covers every mnemonic above
        raise SimulationError(f"no compiled handler for {m}")
    src.emit("    }")

    if last and m not in _BRANCH_MNEMONICS and m not in (
        "jalr", "ebreak", "ecall",
    ):
        # Straight-line block end (cap, truncation, or a followed jal
        # whose target broke the walk): resume at the fallthrough pc.
        src.commit("    ", length, _u(fallthrough), str(src.prefix(length)), 0)


def _block_fallthrough(block) -> int:
    """Resume pc after a block whose last instruction falls through.

    ``TranslatedBlock`` stores only pcs/words, but the fallthrough is
    derivable: a trailing (followed) ``jal`` resumes at its target,
    anything else at ``pc + 4``.  Blocks ending in a branch / ``jalr`` /
    system op never consult this (their next pc is dynamic).
    """
    pc, word = block.pcs[-1], block.words[-1]
    if word & 0x7F == 0x6F:
        return (pc + jal_offset(word)) & _MASK32
    return pc + 4


def _block_source(start_pc: int, block) -> Optional[str]:
    """Lower one TranslatedBlock to a C function, or None if undecodable."""
    src = _CBlock(start_pc)
    try:
        instrs = [decode(word) for word in block.words]
    except SimulationError:  # pragma: no cover - translate() pre-truncates
        return None
    src.emit(
        f"static int {src.name}(int64_t *st, uint32_t *R, uint8_t *mem,"
        " int64_t *ev, const uint8_t *cw, int64_t cwn)"
    )
    src.emit("{")
    src.emit("    int64_t el = ev ? st[5] : 0;")
    src.emit("    const uint32_t msz = (uint32_t)st[11];")
    src.emit("    (void)mem; (void)msz; (void)cw; (void)cwn; (void)el;")
    length = len(instrs)
    fallthrough = _block_fallthrough(block)
    for i, (pc, ins) in enumerate(zip(block.pcs, instrs)):
        continuation = block.pcs[i + 1] if i < length - 1 else None
        _emit_c_instruction(
            src, i, ins, pc, continuation, length, fallthrough
        )
    src.emit("}")
    return "\n".join(src.lines)


def _generate_source(blocks: Dict[int, Any]) -> str:
    """The full module source: block functions, tables, and the driver."""
    parts = [_HEADER]
    ordered = sorted(blocks.items())
    names: List[str] = []
    lengths: List[int] = []
    table_ids: List[Tuple[int, int]] = []
    for start_pc, block in ordered:
        body = _block_source(start_pc, block)
        if body is None:  # pragma: no cover - translate() pre-truncates
            continue
        parts.append(body)
        table_ids.append((start_pc >> 2, len(names) + 1))
        names.append(f"bb_{start_pc:08x}")
        lengths.append(block.length)
    table_len = max(idx for idx, _ in table_ids) + 1
    parts.append(
        "typedef int (*reveal_bb)(int64_t *, uint32_t *, uint8_t *,"
        " int64_t *, const uint8_t *, int64_t);"
    )
    parts.append(
        f"static const reveal_bb reveal_fns[{len(names)}] = {{"
        + ", ".join(names) + "};"
    )
    parts.append(
        f"static const int32_t reveal_len[{len(lengths)}] = {{"
        + ", ".join(str(n) for n in lengths) + "};"
    )
    entries = ", ".join(f"[{idx}] = {bid}" for idx, bid in table_ids)
    parts.append(
        f"static const int32_t reveal_table[{table_len}] = {{{entries}}};"
    )
    parts.append(f"""\
int reveal_run(int64_t *st, uint32_t *regs, uint8_t *mem, int64_t *ev,
               const uint8_t *cw, int64_t cw_len)
{{
    for (;;) {{
        if (st[7]) return {STATUS_HALT};
        const uint32_t pc = (uint32_t)st[0];
        if (pc & 3u) return {STATUS_MISS};
        const uint32_t idx = pc >> 2;
        const int32_t id = (idx < {table_len}u) ? reveal_table[idx] : 0;
        if (!id) return {STATUS_MISS};
        const int32_t b = id - 1;
        if (st[3] + reveal_len[b] > st[4]) return {STATUS_BUDGET};
        if (ev && st[5] + reveal_len[b] > st[6]) return {STATUS_EVENTS};
        st[12] += 1;
        const int r = reveal_fns[b](st, regs, mem, ev, cw, cw_len);
        if (r) return r;
    }}
}}
""")
    return "\n\n".join(parts)


# ----------------------------------------------------------------------
# Module compilation (the repro.backends.native cffi toolchain)
# ----------------------------------------------------------------------
def _compile_module(source: str):
    """Build (or reuse) the extension for ``source``; returns the module.

    Same digest-keyed disk cache and atomic publish as
    ``repro.backends.native._compile_and_load``, under its own
    ``_reveal_cpu_<digest>`` namespace so the two backends never collide.
    """
    from repro.backends.native import _cache_dir, _load_extension

    digest = hashlib.sha256((_CDEF + source).encode()).hexdigest()[:12]
    module = _MODULES.get(digest)
    if module is not None:
        return module
    modname = f"_reveal_cpu_{digest}"
    cache_dir = _cache_dir()
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    target = os.path.join(cache_dir, modname + suffix)
    if os.path.exists(target):
        module = _load_extension(modname, target)
    else:
        import shutil
        import tempfile

        import cffi  # capability probe: missing cffi -> fall back

        os.makedirs(cache_dir, exist_ok=True)
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        ffi.set_source(
            modname, source,
            extra_compile_args=["-O3", "-ffp-contract=off"],
        )
        build_dir = tempfile.mkdtemp(prefix="build-", dir=cache_dir)
        try:
            built = ffi.compile(tmpdir=build_dir)
            os.replace(built, target)
        finally:
            shutil.rmtree(build_dir, ignore_errors=True)
        module = _load_extension(modname, target)
    _MODULES[digest] = module
    return module


class CompiledProgram:
    """Per-program compiled state: blocks, module, and the code bitmap.

    A device keeps one of these per program (like the threaded engine's
    warm ``_block_cache``); the conformance harness builds a fresh one
    per case — the digest-keyed module cache makes that cheap.  The
    ``blocks`` dict and ``code_words`` set are shared *in place* with
    each run's :class:`~repro.riscv.cpu.Cpu` via
    :meth:`~repro.riscv.cpu.Cpu.adopt_translations`, so the generated
    Python blocks' own SMC guard clears them for us.
    """

    def __init__(self) -> None:
        self.blocks: Dict[int, Any] = {}
        self.code_words: Set[int] = set()
        self.module = None
        self.bitmap = np.zeros(1, dtype=np.uint8)
        self.pending = True  # blocks translated since the last compile
        self.compile_error: Optional[str] = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, cpu) -> None:
        """Adopt the shared caches and (re)compile if blocks changed.

        Compilation happens only at run start — an SMC invalidation or a
        mid-run miss defers to the *next* run, so one run never pays gcc
        more than once.
        """
        cpu.adopt_translations(self.blocks, self.code_words)
        if self.module is None or self.pending:
            self._prepare(cpu)

    def _prepare(self, cpu) -> None:
        start = time.perf_counter()
        self._discover(cpu)
        self._rebuild_bitmap()
        self.pending = False
        if not self.blocks:
            self.module = None
            return
        try:
            self.module = _compile_module(_generate_source(self.blocks))
            self.compile_error = None
        except Exception as exc:  # no toolchain/cffi: interpret instead
            self.module = None
            self.compile_error = f"{type(exc).__name__}: {exc}"
        _STATS["compiles"] += 1
        _STATS["compile_time_s"] += time.perf_counter() - start

    def _discover(self, cpu) -> None:
        """Translate every statically reachable block from ``cpu.pc``.

        Follows both directions of conditional branches (terminator or
        superblock side exit) and straight-line fallthroughs; ``jalr``
        targets are dynamic and surface as run-time misses instead.
        Blocks whose first word does not decode are skipped — execution
        reaching them faults live through the Python dispatch path.
        """
        memory = cpu.memory
        frontier = [cpu.pc]
        visited: Set[int] = set()
        while frontier and len(self.blocks) < MAX_COMPILED_BLOCKS:
            pc = frontier.pop()
            if pc in visited or pc & 3:
                continue
            visited.add(pc)
            block = self.blocks.get(pc)
            if block is None:
                try:
                    block = translate(memory, pc)
                except SimulationError:
                    continue
                self.blocks[pc] = block
                self.code_words.update(block.pcs)
            for successor in self._successors(block):
                if successor not in visited:
                    frontier.append(successor)

    @staticmethod
    def _successors(block) -> List[int]:
        succ: List[int] = []
        for pc, word in zip(block.pcs, block.words):
            if word & 0x7F == 0x63:
                succ.append((pc + branch_offset(word)) & _MASK32)
                succ.append((pc + 4) & _MASK32)
        if block.words[-1] & 0x7F not in (0x63, 0x67, 0x73):
            succ.append(_block_fallthrough(block))
        return succ

    # -- code bitmap (the C-side SMC guard) ----------------------------
    def _rebuild_bitmap(self) -> None:
        top = 0
        for block in self.blocks.values():
            top = max(top, max(block.pcs))
        bitmap = np.zeros((top >> 2) + 1, dtype=np.uint8)
        for block in self.blocks.values():
            for pc in block.pcs:
                bitmap[pc >> 2] = 1
        self.bitmap = bitmap

    def note_new_block(self, block) -> None:
        """A run-time miss translated a new block: mark it, defer compile."""
        self.pending = True
        top = max(block.pcs)
        if (top >> 2) >= self.bitmap.shape[0]:
            grown = np.zeros((top >> 2) + 1, dtype=np.uint8)
            grown[: self.bitmap.shape[0]] = self.bitmap
            self.bitmap = grown
        for pc in block.pcs:
            self.bitmap[pc >> 2] = 1

    def drop_compiled(self) -> None:
        """SMC invalidation: drop the module and the (now stale) bitmap."""
        if self.module is not None:
            _STATS["invalidations"] += 1
        self.module = None
        self.pending = True
        self.bitmap = np.zeros(1, dtype=np.uint8)


# ----------------------------------------------------------------------
# The mixed C / Python run loop
# ----------------------------------------------------------------------
def _fault_message(kind: int, address: int, width: int, memory) -> str:
    """Reconstruct Memory._check's exact SimulationError string."""
    if kind == 1:
        return (
            f"memory access at {address:#x} (+{width})"
            f" outside [0, {memory.size:#x})"
        )
    return f"misaligned {width}-byte access at {address:#x}"


def _enter_native(cpu, program, executed: int, max_instructions: int):
    """Marshal state into C, run until a boundary, marshal back."""
    module = program.module
    ffi, lib = module.ffi, module.lib
    recording = cpu._record_events
    log = cpu.events
    if recording:
        log._flush()
    st = np.zeros(_ST_SLOTS, dtype=np.int64)
    st[0] = cpu.pc
    st[1] = cpu.cycle_count
    st[2] = cpu.instruction_count
    st[3] = executed
    st[4] = max_instructions
    st[11] = cpu.memory.size
    regs32 = np.array(cpu.registers, dtype=np.uint32)
    if recording:
        st[5] = log._length
        st[6] = log._data.shape[0]
        ev = ffi.cast("int64_t *", ffi.from_buffer(log._data))
    else:
        ev = ffi.NULL
    bitmap = program.bitmap
    status = lib.reveal_run(
        ffi.cast("int64_t *", ffi.from_buffer(st)),
        ffi.cast("uint32_t *", ffi.from_buffer(regs32)),
        ffi.cast("uint8_t *", ffi.from_buffer(cpu.memory._data)),
        ev,
        ffi.cast("uint8_t *", ffi.from_buffer(bitmap)),
        bitmap.shape[0],
    )
    cpu.registers[:] = [int(v) for v in regs32]
    cpu.pc = int(st[0])
    cpu.cycle_count = int(st[1])
    cpu.instruction_count = int(st[2])
    cpu.halted = bool(st[7])
    if recording:
        log._length = int(st[5])
    _STATS["hits"] += int(st[12])
    return int(status), int(st[3]), st


def _run_loop(cpu, max_instructions: int, program: CompiledProgram) -> int:
    program.attach(cpu)
    executed = 0
    memory = cpu.memory
    regs = cpu.registers
    cache = cpu._block_cache  # is program.blocks after attach()
    recording = cpu._record_events
    log = cpu.events
    while not cpu.halted:
        if program.module is not None:
            status, executed, st = _enter_native(
                cpu, program, executed, max_instructions
            )
            if status == STATUS_HALT:
                break
            if status == STATUS_EVENTS:
                log.reserve(max(64, log._data.shape[0]))
                continue
            if status == STATUS_BUDGET:
                return cpu._run_budget_tail(executed, max_instructions)
            if status == STATUS_FAULT:
                raise SimulationError(
                    _fault_message(int(st[8]), int(st[9]), int(st[10]), memory)
                )
            if status == STATUS_SMC:
                cpu._invalidate_blocks()
                program.drop_compiled()
                continue
            # STATUS_MISS: interpret one block below, then re-enter C.
        block = cache.get(cpu.pc)
        if block is None:
            if executed >= max_instructions:
                raise SimulationError(
                    f"instruction budget {max_instructions} exhausted"
                    f" at pc={cpu.pc:#x}"
                )
            block = translate(memory, cpu.pc)
            cache[cpu.pc] = block
            cpu._code_words.update(block.pcs)
            program.note_new_block(block)
            _STATS["misses"] += 1
        else:
            _STATS["hits"] += 1
        if executed + block.length > max_instructions:
            return cpu._run_budget_tail(executed, max_instructions)
        words_before = len(cpu._code_words)
        if recording:
            executed += block.run_recording(
                cpu, regs, memory,
                log._pending_dyn.extend, log._pending_meta.append,
            )
        else:
            executed += block.run_fast(cpu, regs, memory)
        if len(cpu._code_words) < words_before:
            # The block's own SMC guard invalidated the shared caches.
            program.drop_compiled()
    return executed


def run_compiled(
    cpu,
    max_instructions: int = 10_000_000,
    program: Optional[CompiledProgram] = None,
) -> int:
    """Execute on the compiled engine until ``ebreak`` or budget.

    Drop-in equivalent of :meth:`~repro.riscv.cpu.Cpu.run` — same
    return value, same exceptions, bit-identical machine state — with
    block bodies running as generated C wherever a module compiled
    (and as threaded-engine Python everywhere else, so a missing
    toolchain degrades to correct-but-slower, never to wrong).
    ``program`` carries the warm compiled state across runs; ``None``
    builds a fresh one (single-shot callers, the conformance harness).
    """
    if program is None:
        program = CompiledProgram()
    if not cpu._record_retires:
        return _run_loop(cpu, max_instructions, program)
    # Retire projection mirrors Cpu._run_retiring: park live emission,
    # then project the whole new-event segment in one pass at run end.
    cpu._record_retires = False
    try:
        executed = _run_loop(cpu, max_instructions, program)
    except SimulationError as error:
        cpu._record_retires = True
        cpu._finalize_retires([], str(error))
        raise
    cpu._record_retires = True
    cpu._finalize_retires([], None)
    return executed


# ----------------------------------------------------------------------
# Capability probe (the backend-registry degradation contract)
# ----------------------------------------------------------------------
_PROBE: Dict[str, Any] = {"checked": False, "available": False, "error": None}


def compiled_available() -> bool:
    """True when the compiled engine actually runs generated C here."""
    _probe()
    return bool(_PROBE["available"])


def probe_error() -> Optional[str]:
    """Why the compiled engine is unavailable (None when it is)."""
    _probe()
    return _PROBE["error"]


def reset_probe() -> None:
    """Forget the probe result (tests toggling the environment)."""
    _PROBE.update(checked=False, available=False, error=None)


def _probe() -> None:
    if _PROBE["checked"]:
        return
    _PROBE["checked"] = True
    if os.environ.get("REVEAL_DISABLE_COMPILED", "").strip():
        _PROBE["available"] = False
        _PROBE["error"] = "disabled by REVEAL_DISABLE_COMPILED"
        return
    try:
        # A real end-to-end run: one ebreak must execute *in C* (the
        # module must have compiled), not just interpret correctly.
        from repro.riscv.cpu import Cpu
        from repro.riscv.memory import Memory

        cpu = Cpu(Memory(64), record_events=True)
        cpu.load_program([0x00100073], 0)
        probe_program = CompiledProgram()
        executed = run_compiled(cpu, max_instructions=16, program=probe_program)
        if probe_program.module is None:
            raise SimulationError(
                probe_program.compile_error or "module did not compile"
            )
        if not (cpu.halted and executed == 1):
            raise SimulationError("probe program did not halt after 1 insn")
        _PROBE["available"] = True
        _PROBE["error"] = None
    except Exception as exc:
        _PROBE["available"] = False
        _PROBE["error"] = f"{type(exc).__name__}: {exc}"
