"""Two-pass RV32IM assembler.

Supports labels, decimal/hex immediates, ``%lo``-free ``li`` expansion,
the common pseudo-instructions, and ``.word`` data directives.  This is
enough to express the Gaussian-sampling kernel of
:mod:`repro.riscv.programs` the way a C compiler would have lowered
SEAL's inner loop.

Syntax::

    loop:
        addi  t0, t0, -1      # comment
        bnez  t0, loop
        li    a0, 0x12345678  # expands to lui+addi when needed
        lw    a1, 8(sp)
        .word 0xdeadbeef
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import AssemblyError
from repro.riscv.isa import encode, register_number

_MASK32 = 0xFFFFFFFF

# Pseudo-instructions that expand to exactly one real instruction.
# Each entry maps mnemonic -> (real mnemonic, argument template).
_SIMPLE_PSEUDO = {
    "nop": ("addi", ["zero", "zero", "0"]),
    "ret": ("jalr", ["zero", "ra", "0"]),
}


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


class _Line:
    """One source line after pass 1: mnemonic, operands, address."""

    def __init__(self, mnemonic: str, operands: List[str], address: int, source: str):
        self.mnemonic = mnemonic
        self.operands = operands
        self.address = address
        self.source = source


def _expansion_size(mnemonic: str, operands: List[str]) -> int:
    """How many words a (pseudo-)instruction occupies."""
    if mnemonic == "li":
        if len(operands) != 2:
            raise AssemblyError(f"li expects 2 operands, got {operands}")
        value = _parse_int(operands[1]) & _MASK32
        signed = value - (1 << 32) if value & 0x80000000 else value
        if -2048 <= signed <= 2047:
            return 1
        return 1 if (value & 0xFFF) == 0 else 2
    if mnemonic == "call":
        return 1  # jal ra, label
    return 1


class Program:
    """Assembled machine code plus its symbol table."""

    def __init__(self, words: List[int], symbols: Dict[str, int], listing: List[str]):
        self.words = words
        self.symbols = symbols
        self.listing = listing

    def __len__(self) -> int:
        return len(self.words)


def assemble(source: str, base_address: int = 0) -> Program:
    """Assemble RV32IM source into a :class:`Program`.

    Raises :class:`AssemblyError` with the offending line on any syntax
    problem, undefined label or out-of-range immediate.
    """
    symbols: Dict[str, int] = {}
    lines: List[_Line] = []
    address = base_address

    # ---------------- pass 1: addresses and labels ----------------
    for raw in source.splitlines():
        text = raw.split("#", 1)[0].strip()
        if not text:
            continue
        while True:
            match = re.match(r"^([A-Za-z_]\w*):\s*(.*)$", text)
            if not match:
                break
            label = match.group(1)
            if label in symbols:
                raise AssemblyError(f"duplicate label {label!r}")
            symbols[label] = address
            text = match.group(2).strip()
        if not text:
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        if mnemonic == ".word":
            size = len(operands)
        else:
            size = _expansion_size(mnemonic, operands)
        lines.append(_Line(mnemonic, operands, address, raw.strip()))
        address += 4 * size

    # ---------------- pass 2: encoding ----------------
    words: List[int] = []
    listing: List[str] = []

    def resolve(token: str, pc: int, pc_relative: bool) -> int:
        token = token.strip()
        if token in symbols:
            return symbols[token] - pc if pc_relative else symbols[token]
        return _parse_int(token)

    for line in lines:
        try:
            encoded = _encode_line(line, symbols, resolve)
        except AssemblyError as exc:
            raise AssemblyError(f"{exc} (in: {line.source!r})") from None
        for word in encoded:
            listing.append(f"{line.address + 4 * (len(listing) - len(words)):#06x}: {line.source}")
            words.append(word)

    return Program(words, symbols, listing)


def _encode_line(line: _Line, symbols: Dict[str, int], resolve) -> List[int]:
    m = line.mnemonic
    ops = line.operands
    pc = line.address

    if m == ".word":
        return [_parse_int(tok) & _MASK32 for tok in ops]

    if m in _SIMPLE_PSEUDO:
        real, template = _SIMPLE_PSEUDO[m]
        return _encode_line(_Line(real, list(template), pc, line.source), symbols, resolve)

    # --- pseudo-instructions ---
    if m == "li":
        rd = register_number(ops[0])
        value = _parse_int(ops[1]) & _MASK32
        signed = value - (1 << 32) if value & 0x80000000 else value
        if -2048 <= signed <= 2047:
            return [encode("addi", rd=rd, rs1=0, imm=signed)]
        upper = (value + 0x800) >> 12
        lower = value - ((upper << 12) & _MASK32)
        lower = ((lower + (1 << 31)) & _MASK32) - (1 << 31)
        if (value & 0xFFF) == 0:
            return [encode("lui", rd=rd, imm=(value >> 12) & 0xFFFFF)]
        return [
            encode("lui", rd=rd, imm=upper & 0xFFFFF),
            encode("addi", rd=rd, rs1=rd, imm=lower),
        ]
    if m == "mv":
        return [encode("addi", rd=register_number(ops[0]), rs1=register_number(ops[1]), imm=0)]
    if m == "not":
        return [encode("xori", rd=register_number(ops[0]), rs1=register_number(ops[1]), imm=-1)]
    if m == "neg":
        return [encode("sub", rd=register_number(ops[0]), rs1=0, rs2=register_number(ops[1]))]
    if m == "seqz":
        return [encode("sltiu", rd=register_number(ops[0]), rs1=register_number(ops[1]), imm=1)]
    if m == "snez":
        return [encode("sltu", rd=register_number(ops[0]), rs1=0, rs2=register_number(ops[1]))]
    if m == "j":
        return [encode("jal", rd=0, imm=resolve(ops[0], pc, True))]
    if m == "call":
        return [encode("jal", rd=1, imm=resolve(ops[0], pc, True))]
    if m == "jr":
        return [encode("jalr", rd=0, rs1=register_number(ops[0]), imm=0)]
    if m in ("beqz", "bnez", "bltz", "bgez", "bgtz", "blez"):
        rs = register_number(ops[0])
        offset = resolve(ops[1], pc, True)
        table = {
            "beqz": ("beq", rs, 0),
            "bnez": ("bne", rs, 0),
            "bltz": ("blt", rs, 0),
            "bgez": ("bge", rs, 0),
            "bgtz": ("blt", 0, rs),
            "blez": ("bge", 0, rs),
        }
        real, rs1, rs2 = table[m]
        return [encode(real, rs1=rs1, rs2=rs2, imm=offset)]
    if m in ("bgt", "ble", "bgtu", "bleu"):
        rs1 = register_number(ops[0])
        rs2 = register_number(ops[1])
        offset = resolve(ops[2], pc, True)
        real = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}[m]
        return [encode(real, rs1=rs2, rs2=rs1, imm=offset)]

    # --- real instructions ---
    if m in ("lui", "auipc"):
        return [encode(m, rd=register_number(ops[0]), imm=_parse_int(ops[1]) & 0xFFFFF)]
    if m == "jal":
        if len(ops) == 1:
            return [encode(m, rd=1, imm=resolve(ops[0], pc, True))]
        return [encode(m, rd=register_number(ops[0]), imm=resolve(ops[1], pc, True))]
    if m == "jalr":
        if len(ops) == 3:
            return [
                encode(
                    m,
                    rd=register_number(ops[0]),
                    rs1=register_number(ops[1]),
                    imm=_parse_int(ops[2]),
                )
            ]
        mem = _MEM_RE.match(ops[1])
        if mem:
            return [
                encode(
                    m,
                    rd=register_number(ops[0]),
                    rs1=register_number(mem.group(2)),
                    imm=_parse_int(mem.group(1)),
                )
            ]
        return [encode(m, rd=register_number(ops[0]), rs1=register_number(ops[1]), imm=0)]
    if m in ("lb", "lh", "lw", "lbu", "lhu"):
        mem = _MEM_RE.match(ops[1])
        if not mem:
            raise AssemblyError(f"{m}: expected offset(base), got {ops[1]!r}")
        return [
            encode(
                m,
                rd=register_number(ops[0]),
                rs1=register_number(mem.group(2)),
                imm=_parse_int(mem.group(1)),
            )
        ]
    if m in ("sb", "sh", "sw"):
        mem = _MEM_RE.match(ops[1])
        if not mem:
            raise AssemblyError(f"{m}: expected offset(base), got {ops[1]!r}")
        return [
            encode(
                m,
                rs2=register_number(ops[0]),
                rs1=register_number(mem.group(2)),
                imm=_parse_int(mem.group(1)),
            )
        ]
    if m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        return [
            encode(
                m,
                rs1=register_number(ops[0]),
                rs2=register_number(ops[1]),
                imm=resolve(ops[2], pc, True),
            )
        ]
    if m in ("addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai"):
        return [
            encode(
                m,
                rd=register_number(ops[0]),
                rs1=register_number(ops[1]),
                imm=_parse_int(ops[2]),
            )
        ]
    if m in (
        "add sub sll slt sltu xor srl sra or and "
        "mul mulh mulhsu mulhu div divu rem remu"
    ).split():
        return [
            encode(
                m,
                rd=register_number(ops[0]),
                rs1=register_number(ops[1]),
                rs2=register_number(ops[2]),
            )
        ]
    if m in ("ebreak", "ecall"):
        return [encode(m)]
    raise AssemblyError(f"unknown mnemonic {m!r}")
