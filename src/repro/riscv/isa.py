"""RV32IM instruction encodings: encoder, decoder, register names.

Implements the base integer ISA (RV32I) plus the M extension, which is
the PicoRV32 configuration the paper uses ("RV32IM ... 32-bit based
integer and standard extension for integer multiplication and
division").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AssemblyError, SimulationError

# ----------------------------------------------------------------------
# Registers
# ----------------------------------------------------------------------
ABI_NAMES = (
    "zero ra sp gp tp t0 t1 t2 s0 s1 a0 a1 a2 a3 a4 a5 "
    "a6 a7 s2 s3 s4 s5 s6 s7 s8 s9 s10 s11 t3 t4 t5 t6"
).split()

REGISTERS: Dict[str, int] = {name: i for i, name in enumerate(ABI_NAMES)}
REGISTERS.update({f"x{i}": i for i in range(32)})
REGISTERS["fp"] = 8  # alias of s0


def register_number(name: str) -> int:
    """Resolve a register name (ABI or xN) to its number."""
    try:
        return REGISTERS[name]
    except KeyError:
        raise AssemblyError(f"unknown register {name!r}") from None


# ----------------------------------------------------------------------
# Instruction table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InstructionSpec:
    """Encoding metadata for one mnemonic."""

    mnemonic: str
    fmt: str  # one of R I S B U J
    opcode: int
    funct3: int = 0
    funct7: int = 0


_R = lambda m, f3, f7=0, op=0x33: InstructionSpec(m, "R", op, f3, f7)
_I = lambda m, f3, op, f7=0: InstructionSpec(m, "I", op, f3, f7)

SPECS: Dict[str, InstructionSpec] = {
    s.mnemonic: s
    for s in [
        # U / J
        InstructionSpec("lui", "U", 0x37),
        InstructionSpec("auipc", "U", 0x17),
        InstructionSpec("jal", "J", 0x6F),
        # I-type jumps / loads / ALU immediates
        _I("jalr", 0, 0x67),
        _I("lb", 0, 0x03),
        _I("lh", 1, 0x03),
        _I("lw", 2, 0x03),
        _I("lbu", 4, 0x03),
        _I("lhu", 5, 0x03),
        _I("addi", 0, 0x13),
        _I("slti", 2, 0x13),
        _I("sltiu", 3, 0x13),
        _I("xori", 4, 0x13),
        _I("ori", 6, 0x13),
        _I("andi", 7, 0x13),
        _I("slli", 1, 0x13, f7=0x00),
        _I("srli", 5, 0x13, f7=0x00),
        _I("srai", 5, 0x13, f7=0x20),
        # S-type stores
        InstructionSpec("sb", "S", 0x23, 0),
        InstructionSpec("sh", "S", 0x23, 1),
        InstructionSpec("sw", "S", 0x23, 2),
        # B-type branches
        InstructionSpec("beq", "B", 0x63, 0),
        InstructionSpec("bne", "B", 0x63, 1),
        InstructionSpec("blt", "B", 0x63, 4),
        InstructionSpec("bge", "B", 0x63, 5),
        InstructionSpec("bltu", "B", 0x63, 6),
        InstructionSpec("bgeu", "B", 0x63, 7),
        # R-type ALU
        _R("add", 0, 0x00),
        _R("sub", 0, 0x20),
        _R("sll", 1, 0x00),
        _R("slt", 2, 0x00),
        _R("sltu", 3, 0x00),
        _R("xor", 4, 0x00),
        _R("srl", 5, 0x00),
        _R("sra", 5, 0x20),
        _R("or", 6, 0x00),
        _R("and", 7, 0x00),
        # M extension
        _R("mul", 0, 0x01),
        _R("mulh", 1, 0x01),
        _R("mulhsu", 2, 0x01),
        _R("mulhu", 3, 0x01),
        _R("div", 4, 0x01),
        _R("divu", 5, 0x01),
        _R("rem", 6, 0x01),
        _R("remu", 7, 0x01),
        # System
        _I("ecall", 0, 0x73),
        _I("ebreak", 0, 0x73),
    ]
}

#: Dense integer opcode ids, assigned in SPECS order.  The threaded-code
#: engine (:mod:`repro.riscv.threaded`) indexes its handler-template
#: table with these instead of comparing mnemonic strings.
OPCODE_IDS: Dict[str, int] = {m: i for i, m in enumerate(SPECS)}

#: Number of distinct opcode ids (table size for dense dispatch).
NUM_OPCODES = len(OPCODE_IDS)

_MASK32 = 0xFFFFFFFF


def _check_imm(mnemonic: str, imm: int, bits: int, signed: bool = True) -> None:
    if signed:
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        low, high = 0, (1 << bits) - 1
    if not (low <= imm <= high):
        raise AssemblyError(
            f"{mnemonic}: immediate {imm} out of range [{low}, {high}]"
        )


def encode(
    mnemonic: str,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    imm: int = 0,
) -> int:
    """Encode one instruction into its 32-bit word."""
    spec = SPECS.get(mnemonic)
    if spec is None:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
    op, f3, f7 = spec.opcode, spec.funct3, spec.funct7
    if spec.fmt == "R":
        return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt == "I":
        if mnemonic == "ebreak":
            return 0x00100073
        if mnemonic == "ecall":
            return 0x00000073
        if mnemonic in ("slli", "srli", "srai"):
            _check_imm(mnemonic, imm, 5, signed=False)
            return (f7 << 25) | (imm << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
        _check_imm(mnemonic, imm, 12)
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt == "S":
        _check_imm(mnemonic, imm, 12)
        imm &= 0xFFF
        return (
            ((imm >> 5) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (f3 << 12)
            | ((imm & 0x1F) << 7)
            | op
        )
    if spec.fmt == "B":
        _check_imm(mnemonic, imm, 13)
        if imm % 2:
            raise AssemblyError(f"{mnemonic}: branch offset must be even")
        imm &= 0x1FFF
        return (
            ((imm >> 12) << 31)
            | (((imm >> 5) & 0x3F) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (f3 << 12)
            | (((imm >> 1) & 0xF) << 8)
            | (((imm >> 11) & 1) << 7)
            | op
        )
    if spec.fmt == "U":
        _check_imm(mnemonic, imm, 20, signed=False)
        return (imm << 12) | (rd << 7) | op
    if spec.fmt == "J":
        _check_imm(mnemonic, imm, 21)
        if imm % 2:
            raise AssemblyError(f"{mnemonic}: jump offset must be even")
        imm &= 0x1FFFFF
        return (
            ((imm >> 20) << 31)
            | (((imm >> 1) & 0x3FF) << 21)
            | (((imm >> 11) & 1) << 20)
            | (((imm >> 12) & 0xFF) << 12)
            | (rd << 7)
            | op
        )
    raise AssemblyError(f"unhandled format {spec.fmt}")  # pragma: no cover


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction ready for execution.

    ``op_id`` is the dense integer opcode id (:data:`OPCODE_IDS`); it is
    derived from the mnemonic automatically so every construction site —
    including tests building ``Decoded`` by hand — gets a valid id.
    """

    mnemonic: str
    rd: int
    rs1: int
    rs2: int
    imm: int
    word: int
    op_id: int = -1

    def __post_init__(self) -> None:
        if self.op_id < 0:
            object.__setattr__(self, "op_id", OPCODE_IDS[self.mnemonic])


def _sign_extend(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


_BY_KEY: Dict[tuple, InstructionSpec] = {}
for _spec in SPECS.values():
    if _spec.fmt == "R" or _spec.mnemonic in ("slli", "srli", "srai"):
        _BY_KEY[(_spec.opcode, _spec.funct3, _spec.funct7)] = _spec
    else:
        _BY_KEY[(_spec.opcode, _spec.funct3, None)] = _spec


def branch_offset(word: int) -> int:
    """Signed byte offset of a B-type branch word, without a full decode.

    Both block-translation walks (threaded and lane engines) peek only
    at the opcode plus this immediate to decide where a block extends,
    so the B-immediate scatter lives here once rather than inline in
    each walk.
    """
    imm = (
        (((word >> 31) & 1) << 12)
        | (((word >> 7) & 1) << 11)
        | (((word >> 25) & 0x3F) << 5)
        | (((word >> 8) & 0xF) << 1)
    )
    return _sign_extend(imm, 13)


def jal_offset(word: int) -> int:
    """Signed byte offset of a ``jal`` word, without a full decode."""
    imm = (
        (((word >> 31) & 1) << 20)
        | (((word >> 21) & 0x3FF) << 1)
        | (((word >> 20) & 1) << 11)
        | (((word >> 12) & 0xFF) << 12)
    )
    return _sign_extend(imm, 21)


def decode(word: int) -> Decoded:
    """Decode a 32-bit instruction word.

    Raises :class:`SimulationError` on an illegal instruction, which is
    what the CPU reports when execution escapes the program.
    """
    word &= _MASK32
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    f3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    f7 = (word >> 25) & 0x7F

    if opcode == 0x37 or opcode == 0x17:
        mnemonic = "lui" if opcode == 0x37 else "auipc"
        return Decoded(mnemonic, rd, 0, 0, word >> 12, word)
    if opcode == 0x6F:
        return Decoded("jal", rd, 0, 0, jal_offset(word), word)
    if opcode == 0x73:
        if word == 0x00100073:
            return Decoded("ebreak", 0, 0, 0, 0, word)
        if word == 0x00000073:
            return Decoded("ecall", 0, 0, 0, 0, word)
        raise SimulationError(f"unsupported system instruction {word:#010x}")
    if opcode == 0x63:
        spec = _BY_KEY.get((opcode, f3, None))
        if spec is None:
            raise SimulationError(f"illegal branch funct3={f3}")
        return Decoded(spec.mnemonic, 0, rs1, rs2, branch_offset(word), word)
    if opcode == 0x23:
        spec = _BY_KEY.get((opcode, f3, None))
        if spec is None:
            raise SimulationError(f"illegal store funct3={f3}")
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Decoded(spec.mnemonic, 0, rs1, rs2, _sign_extend(imm, 12), word)
    if opcode == 0x33:
        spec = _BY_KEY.get((opcode, f3, f7))
        if spec is None:
            raise SimulationError(f"illegal R-type f3={f3} f7={f7:#x}")
        return Decoded(spec.mnemonic, rd, rs1, rs2, 0, word)
    if opcode in (0x03, 0x13, 0x67):
        if opcode == 0x13 and f3 in (1, 5):
            spec = _BY_KEY.get((opcode, f3, f7))
            if spec is None:
                raise SimulationError(f"illegal shift f3={f3} f7={f7:#x}")
            return Decoded(spec.mnemonic, rd, rs1, 0, rs2, word)  # shamt in rs2 slot
        spec = _BY_KEY.get((opcode, f3, None))
        if spec is None:
            raise SimulationError(f"illegal I-type opcode={opcode:#x} f3={f3}")
        return Decoded(spec.mnemonic, rd, rs1, 0, _sign_extend(word >> 20, 12), word)
    raise SimulationError(f"illegal instruction {word:#010x}")
