"""RV32IM disassembler: decoded instructions back to assembly text.

Round-trips with the assembler (useful when debugging kernel variants
and when inspecting what the leakage model "sees" per fetch).
"""

from __future__ import annotations

from typing import List

from repro.riscv.isa import ABI_NAMES, Decoded, decode


def _reg(index: int) -> str:
    return ABI_NAMES[index]


def format_instruction(ins: Decoded, address: int = 0) -> str:
    """One instruction as assembler-compatible text.

    Branch/jump targets are rendered as absolute-address comments since
    labels are gone after encoding.
    """
    m = ins.mnemonic
    if m in ("lui", "auipc"):
        return f"{m} {_reg(ins.rd)}, {ins.imm:#x}"
    if m == "jal":
        return f"jal {_reg(ins.rd)}, {address + ins.imm:#x}"
    if m == "jalr":
        return f"jalr {_reg(ins.rd)}, {ins.imm}({_reg(ins.rs1)})"
    if m in ("lb", "lh", "lw", "lbu", "lhu"):
        return f"{m} {_reg(ins.rd)}, {ins.imm}({_reg(ins.rs1)})"
    if m in ("sb", "sh", "sw"):
        return f"{m} {_reg(ins.rs2)}, {ins.imm}({_reg(ins.rs1)})"
    if m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        return f"{m} {_reg(ins.rs1)}, {_reg(ins.rs2)}, {address + ins.imm:#x}"
    if m in ("slli", "srli", "srai"):
        return f"{m} {_reg(ins.rd)}, {_reg(ins.rs1)}, {ins.imm}"
    if m in ("addi", "slti", "sltiu", "xori", "ori", "andi"):
        return f"{m} {_reg(ins.rd)}, {_reg(ins.rs1)}, {ins.imm}"
    if m in ("ebreak", "ecall"):
        return m
    # R-type
    return f"{m} {_reg(ins.rd)}, {_reg(ins.rs1)}, {_reg(ins.rs2)}"


def disassemble(words: List[int], base_address: int = 0) -> List[str]:
    """Disassemble a word list into ``address: text`` lines."""
    lines = []
    for i, word in enumerate(words):
        address = base_address + 4 * i
        text = format_instruction(decode(word), address)
        lines.append(f"{address:#06x}: {text}")
    return lines
