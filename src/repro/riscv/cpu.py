"""The RV32IM interpreter with execution-event recording.

Two execution engines share one architectural state:

- :meth:`Cpu.run` drives the **threaded-code engine**
  (:mod:`repro.riscv.threaded`): basic blocks are decoded once,
  compiled into specialized straight-line handler functions, cached by
  pc, and their execution events are recorded as deferred bulk writes
  (:meth:`EventLog.append_block`) instead of one columnar store per
  retirement.
- :meth:`Cpu.step_reference` / :meth:`Cpu.run_reference` keep the
  original one-instruction-at-a-time interpreter as the semantic
  reference.  The threaded engine is asserted bit-for-bit identical to
  it (registers, pc, cycle/instruction counts, the event log, and every
  ``SimulationError``) in ``tests/riscv/test_threaded_engine.py``.

Events carry everything the CMOS power model needs: the fetched
instruction word, both operand values, the result, the overwritten
destination value (for Hamming-distance leakage) and the memory
address/data where applicable.  The expansion of events into per-cycle
power samples lives in :mod:`repro.power.leakage`, which consumes the
log's int64 column arrays directly — no per-event Python objects are
materialised on the hot path.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.riscv import cycles as cy
from repro.riscv.isa import Decoded, decode
from repro.riscv.memory import Memory
from repro.riscv.retire import (
    DATA_MASK_VALUES as _DATA_MASK_VALUES,
    LOAD_MASKS as _LOAD_MASKS,
    STORE_MASKS as _STORE_MASKS,
    RetireLog,
    is_budget_error,
    plan_columns,
    retires_from_events,
)
from repro.riscv.threaded import TranslatedBlock, note_invalidation, translate

_MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


class ExecutionEvent(NamedTuple):
    """Everything observable about one retired instruction."""

    op_class: int  # cy.OP_* constant
    word: int  # the fetched instruction encoding
    rs1_value: int
    rs2_value: int
    result: int  # rd value written / store data / branch target
    old_rd: int  # destination register's previous content
    address: int  # memory address for loads/stores, else 0
    pc: int


class EventLog(Sequence):
    """Structure-of-arrays store of execution events.

    One preallocated ``(capacity, 8)`` int64 matrix holds one event per
    row (event-major, so a block of consecutive events is one contiguous
    slab), grown by :meth:`reserve` — a single doubled-buffer copy,
    never repeated ``np.concatenate``.  The power model reads the
    fields wholesale via :meth:`columns` / the per-field properties;
    sequence access (``log[i]``, iteration, ``log == [...]``)
    materialises :class:`ExecutionEvent` tuples on demand so existing
    callers keep working.

    The threaded engine records **deferred**: :meth:`append_block`
    queues a ``(TranslatedBlock, count)`` pair plus the block's dynamic
    field values, and the queue is scattered into the matrix in bulk on
    first read (static fields — op class, instruction word, pc,
    constant results — come from the block's cached
    :meth:`~repro.riscv.threaded.TranslatedBlock.flush_plan`).
    Every reader flushes first, so the deferral is invisible to callers.
    """

    _NUM_FIELDS = len(ExecutionEvent._fields)

    def __init__(self, capacity: int = 1024) -> None:
        self._data = np.zeros((max(int(capacity), 1), self._NUM_FIELDS), dtype=np.int64)
        self._length = 0
        # Deferred block recordings: (block, retired_count) pairs plus a
        # flat array of their dynamic field values in emission order
        # (array('q') so the flush reads it zero-copy via frombuffer).
        self._pending_meta: List[Tuple[TranslatedBlock, int]] = []
        self._pending_dyn = array("q")

    # -- recording ------------------------------------------------------
    def append(
        self,
        op_class: int,
        word: int,
        rs1_value: int,
        rs2_value: int,
        result: int,
        old_rd: int,
        address: int,
        pc: int,
    ) -> None:
        """Record one event (reference-engine path: one row store)."""
        if self._pending_meta:
            self._flush()
        n = self._length
        data = self._data
        if n == data.shape[0]:
            self.reserve(1)
            data = self._data
        data[n] = (op_class, word, rs1_value, rs2_value, result, old_rd, address, pc)
        self._length = n + 1

    def append_block(self, block: TranslatedBlock, count: int, dyn_values) -> None:
        """Queue ``count`` retired instructions of a translated block.

        ``dyn_values`` is the flat sequence of the block's *distinct*
        dynamic values (first-emission order); the block's cached flush
        plan fans each value out to every event cell that carries it and
        fills the static fields.  The actual write happens lazily in
        bulk.
        """
        self._pending_meta.append((block, count))
        self._pending_dyn.extend(dyn_values)

    def reserve(self, extra: int) -> None:
        """Ensure room for ``extra`` more events past the current length.

        Growth is a single geometric reallocation (zeroed buffer + one
        slab copy); callers recording whole blocks therefore never pay
        repeated per-append reallocation.
        """
        need = self._length + extra
        capacity = self._data.shape[0]
        if need <= capacity:
            return
        new_capacity = max(capacity, 1)
        while new_capacity < need:
            new_capacity *= 2
        grown = np.zeros((new_capacity, self._NUM_FIELDS), dtype=np.int64)
        grown[: self._length] = self._data[: self._length]
        self._data = grown

    def _flush(self) -> None:
        """Scatter every queued block recording into the matrix.

        Occurrences are bucketed by ``(block, count)`` — a kernel loop
        replays the same handful of blocks thousands of times, so each
        distinct block flushes with two numpy scatters total (template
        broadcast + dynamic-value fan-out over every occurrence) instead
        of one write per executed block.
        """
        meta = self._pending_meta
        if not meta:
            return
        dyn = np.frombuffer(self._pending_dyn, dtype=np.int64)
        fields = self._NUM_FIELDS
        groups: Dict[Tuple[int, int], Tuple] = {}
        event_pos = self._length
        dyn_pos = 0
        for block, count in meta:
            key = (id(block), count)
            group = groups.get(key)
            if group is None:
                groups[key] = group = (block, count, [], [])
            group[2].append(event_pos * fields)
            group[3].append(dyn_pos)
            event_pos += count
            dyn_pos += block.uniq_prefix[count]
        self.reserve(event_pos - self._length)
        flat = self._data.reshape(-1)
        for block, count, bases, dyn_starts in groups.values():
            template, cells, gather, n_uniq = block.flush_template(count)
            span = count * fields
            if len(bases) == 1:
                base = bases[0]
                segment = flat[base : base + span]
                segment[:] = template
                if n_uniq:
                    start = dyn_starts[0]
                    values = dyn[start : start + n_uniq]
                    segment[cells] = values if gather is None else values[gather]
            else:
                b = np.asarray(bases, dtype=np.intp)[:, None]
                flat[b + np.arange(span)] = template
                if n_uniq:
                    starts = np.asarray(dyn_starts, dtype=np.intp)[:, None]
                    values = dyn[starts + np.arange(n_uniq)]
                    flat[b + cells] = values if gather is None else values[:, gather]
        self._length = event_pos
        meta.clear()
        # Release every frombuffer view before resizing the export source.
        values = None  # noqa: F841 - may still view the pending buffer
        del dyn
        del self._pending_dyn[:]

    def clear(self) -> None:
        """Drop all events; the buffer is kept (and re-zeroed) for reuse."""
        self._pending_meta.clear()
        del self._pending_dyn[:]
        if self._length:
            self._data[: self._length].fill(0)
        self._length = 0

    # -- columnar access (what the vectorized power model consumes) ----
    def columns(self) -> np.ndarray:
        """The ``(8, len(self))`` int64 field matrix (a view, not a copy)."""
        if self._pending_meta:
            self._flush()
        return self._data[: self._length].T

    def column(self, name: str) -> np.ndarray:
        """One named field as an int64 vector (a view, not a copy)."""
        if self._pending_meta:
            self._flush()
        return self._data[: self._length, ExecutionEvent._fields.index(name)]

    @property
    def op_class(self) -> np.ndarray:
        return self.column("op_class")

    @property
    def word(self) -> np.ndarray:
        return self.column("word")

    @property
    def rs1_value(self) -> np.ndarray:
        return self.column("rs1_value")

    @property
    def rs2_value(self) -> np.ndarray:
        return self.column("rs2_value")

    @property
    def result(self) -> np.ndarray:
        return self.column("result")

    @property
    def old_rd(self) -> np.ndarray:
        return self.column("old_rd")

    @property
    def address(self) -> np.ndarray:
        return self.column("address")

    @property
    def pc(self) -> np.ndarray:
        return self.column("pc")

    # -- sequence compatibility ----------------------------------------
    def __len__(self) -> int:
        if self._pending_meta:
            self._flush()
        return self._length

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[ExecutionEvent, List[ExecutionEvent]]:
        if self._pending_meta:
            self._flush()
        if isinstance(index, slice):
            return [
                ExecutionEvent(*(int(v) for v in self._data[i]))
                for i in range(*index.indices(self._length))
            ]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("event index out of range")
        return ExecutionEvent(*(int(v) for v in self._data[index]))

    def __iter__(self) -> Iterator[ExecutionEvent]:
        if self._pending_meta:
            self._flush()
        for i in range(self._length):
            yield ExecutionEvent(*(int(v) for v in self._data[i]))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventLog):
            return np.array_equal(self.columns(), other.columns())
        if isinstance(other, (list, tuple, Sequence)) and not isinstance(
            other, (str, bytes)
        ):
            if len(other) != len(self):
                return False
            try:
                return all(a == b for a, b in zip(self, other))
            except TypeError:
                return NotImplemented
        return NotImplemented

    @classmethod
    def from_rows(cls, rows: np.ndarray) -> "EventLog":
        """Build a log directly from an ``(n, 8)`` event-row matrix.

        The lane engine records all lanes into one shared arena
        (:class:`repro.riscv.lanes.LaneEventLog`); per-lane logs are
        materialised from its finalized row slices through this hook.
        """
        rows = np.asarray(rows, dtype=np.int64).reshape(-1, cls._NUM_FIELDS)
        log = cls(capacity=max(rows.shape[0], 1))
        log._data[: rows.shape[0]] = rows
        log._length = rows.shape[0]
        return log

    # -- pickling (translated blocks hold unpicklable generated code) --
    def __getstate__(self) -> dict:
        self._flush()
        return {"rows": self._data[: self._length].copy()}

    def __setstate__(self, state: dict) -> None:
        rows = np.asarray(state["rows"], dtype=np.int64).reshape(-1, self._NUM_FIELDS)
        self._data = np.zeros((max(rows.shape[0], 1), self._NUM_FIELDS), dtype=np.int64)
        self._data[: rows.shape[0]] = rows
        self._length = rows.shape[0]
        self._pending_meta = []
        self._pending_dyn = array("q")

    def __repr__(self) -> str:
        if self._pending_meta:
            self._flush()
        return f"EventLog(length={self._length})"


class Cpu:
    """A PicoRV32-like RV32IM core.

    Parameters
    ----------
    memory:
        The attached RAM; defaults to 1 MiB.
    record_events:
        When True, :attr:`events` collects one entry per instruction;
        turn this off for functional-only runs (it is the dominant cost).
        Disabling recording (at construction or later) empties the log,
        so :attr:`events` never exposes stale entries from a previous
        recorded run.
    record_retires:
        When True, :attr:`retires` additionally collects one RVFI-style
        :class:`~repro.riscv.retire.RetireEvent` per retired
        instruction (the cross-engine conformance interface; see
        :mod:`repro.riscv.retire`).  Off by default — it exists for
        differential testing, not capture — and requires
        ``record_events`` (the threaded engine derives retire rows from
        the event stream).
    """

    def __init__(
        self,
        memory: Optional[Memory] = None,
        record_events: bool = True,
        record_retires: bool = False,
    ) -> None:
        self.memory = memory if memory is not None else Memory()
        self.registers: List[int] = [0] * 32
        self.pc = 0
        self.cycle_count = 0
        self.instruction_count = 0
        self.halted = False
        self.events: EventLog = EventLog()
        self.retires: RetireLog = RetireLog()
        #: Number of event rows already projected into :attr:`retires`.
        self._retired_events = 0
        self._record_retires = False
        self.record_events = record_events
        self.record_retires = record_retires
        self._decoded_cache: Dict[int, Decoded] = {}
        # Threaded-engine state: pc -> compiled block, plus the set of
        # word addresses currently covered by a cached block (for the
        # self-modifying-code guard).
        self._block_cache: Dict[int, TranslatedBlock] = {}
        self._code_words: Set[int] = set()

    @property
    def record_events(self) -> bool:
        return self._record_events

    @record_events.setter
    def record_events(self, enabled: bool) -> None:
        self._record_events = bool(enabled)
        if not self._record_events:
            self.events.clear()
            # Retire rows are derived from the event stream, so they
            # cannot keep recording without it.
            self._record_retires = False
            self.retires.clear()
            self._retired_events = 0

    @property
    def record_retires(self) -> bool:
        return self._record_retires

    @record_retires.setter
    def record_retires(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled and not self._record_events:
            raise SimulationError(
                "record_retires requires record_events (retire rows are"
                " derived from the event stream)"
            )
        self._record_retires = enabled
        if enabled:
            # Projection resumes from here; earlier events stay
            # unretired (they predate the request to record).
            self._retired_events = len(self.events)
        else:
            self.retires.clear()
            self._retired_events = 0

    # ------------------------------------------------------------------
    def load_program(self, words: List[int], base_address: int = 0) -> None:
        """Write a program into memory, reset state, and point pc at it."""
        self.memory.load_program(words, base_address)
        self.registers = [0] * 32
        self.pc = base_address
        self.cycle_count = 0
        self.instruction_count = 0
        self.halted = False
        self.events.clear()
        self.retires.clear()
        self._retired_events = 0
        self._decoded_cache = {}
        self._block_cache = {}
        self._code_words = set()

    def write_register(self, index: int, value: int) -> None:
        """Set a register (used to pass arguments into kernels)."""
        if index != 0:
            self.registers[index] = value & _MASK32

    def read_register(self, index: int) -> int:
        """Read a register value (unsigned 32-bit)."""
        return self.registers[index]

    def _invalidate_blocks(self) -> None:
        """Drop cached translations after a store into translated code."""
        note_invalidation()
        self._block_cache.clear()
        self._code_words.clear()

    def adopt_translations(
        self, block_cache: Dict[int, TranslatedBlock], code_words: Set[int]
    ) -> None:
        """Share a persistent per-program block cache with this core.

        A device that re-runs the same kernel on a fresh :class:`Cpu`
        per capture (so architectural state starts clean) can keep one
        ``{pc: TranslatedBlock}`` dict plus its code-word set across
        runs and attach them here — translations depend only on the
        instruction words, never on data memory or registers, so reuse
        is safe as long as the program is unchanged.  Must be called
        *after* :meth:`load_program` (which resets both containers to
        empty per-core ones).  The self-modifying-code guard keeps
        working: an invalidation clears the shared containers in place.
        """
        self._block_cache = block_cache
        self._code_words = code_words

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 10_000_000) -> int:
        """Execute until ``ebreak`` or the instruction budget runs out.

        Returns the number of instructions retired.  Raises
        :class:`SimulationError` if the budget is exhausted (runaway
        program) or an illegal instruction is hit.

        This is the threaded-code engine: straight-line basic blocks
        are translated once (:func:`repro.riscv.threaded.translate`),
        cached by pc, and replayed as specialized Python functions with
        one deferred :meth:`EventLog.append_block` per block.  The
        budget check runs at block granularity; when fewer instructions
        remain than the next block would retire, execution falls back
        to :meth:`step_reference` so exhaustion raises at exactly the
        same instruction — with the same message and machine state — as
        :meth:`run_reference`.
        """
        if self._record_retires:
            return self._run_retiring(max_instructions)
        executed = 0
        memory = self.memory
        regs = self.registers
        cache = self._block_cache
        if self._record_events:
            log = self.events
            extend_dyn = log._pending_dyn.extend
            push_meta = log._pending_meta.append
            while not self.halted:
                block = cache.get(self.pc)
                if block is None:
                    if executed >= max_instructions:
                        raise SimulationError(
                            f"instruction budget {max_instructions} exhausted"
                            f" at pc={self.pc:#x}"
                        )
                    block = translate(memory, self.pc)
                    cache[self.pc] = block
                    self._code_words.update(block.pcs)
                if executed + block.length > max_instructions:
                    return self._run_budget_tail(executed, max_instructions)
                executed += block.run_recording(self, regs, memory, extend_dyn, push_meta)
        else:
            while not self.halted:
                block = cache.get(self.pc)
                if block is None:
                    if executed >= max_instructions:
                        raise SimulationError(
                            f"instruction budget {max_instructions} exhausted"
                            f" at pc={self.pc:#x}"
                        )
                    block = translate(memory, self.pc)
                    cache[self.pc] = block
                    self._code_words.update(block.pcs)
                if executed + block.length > max_instructions:
                    return self._run_budget_tail(executed, max_instructions)
                executed += block.run_fast(self, regs, memory)
        return executed

    def _run_retiring(self, max_instructions: int) -> int:
        """The threaded-engine loop with retire-log projection.

        Identical block dispatch to :meth:`run`'s recording loop, plus a
        local mirror of every ``(block, count)`` recording the generated
        code pushes — the per-block retire plans those pairs name turn
        the event stream into retire rows in one bulk projection at run
        end (:meth:`_finalize_retires`).  Live per-step emission is
        parked for the duration so budget-tail single-stepping cannot
        interleave rows ahead of the block-projected ones.
        """
        metas: List[Tuple[TranslatedBlock, int]] = []
        log = self.events
        push_meta_log = log._pending_meta.append

        def push_meta(pair: Tuple[TranslatedBlock, int]) -> None:
            metas.append(pair)
            push_meta_log(pair)

        extend_dyn = log._pending_dyn.extend
        executed = 0
        memory = self.memory
        regs = self.registers
        cache = self._block_cache
        self._record_retires = False
        try:
            while not self.halted:
                block = cache.get(self.pc)
                if block is None:
                    if executed >= max_instructions:
                        raise SimulationError(
                            f"instruction budget {max_instructions} exhausted"
                            f" at pc={self.pc:#x}"
                        )
                    block = translate(memory, self.pc)
                    cache[self.pc] = block
                    self._code_words.update(block.pcs)
                if executed + block.length > max_instructions:
                    executed = self._run_budget_tail(executed, max_instructions)
                    break
                executed += block.run_recording(self, regs, memory, extend_dyn, push_meta)
        except SimulationError as error:
            self._record_retires = True
            self._finalize_retires(metas, str(error))
            raise
        self._record_retires = True
        self._finalize_retires(metas, None)
        return executed

    def _finalize_retires(self, metas: List[Tuple[TranslatedBlock, int]], error: Optional[str]) -> None:
        """Project the run's new event rows into :attr:`retires`.

        ``metas`` names the block recordings in emission order; any
        event rows past their coverage came from budget-tail reference
        stepping (or a fault-truncated prefix) and get a plan computed
        straight from their instruction words.  A terminal
        architectural fault appends the trap retire; budget exhaustion
        does not (it is a simulator limit, not a trap).
        """
        cols = self.events.columns()
        start = self._retired_events
        segment = cols[:, start:]
        n = segment.shape[1]
        if n:
            plans = [block.retire_plan(count) for block, count in metas]
            covered = sum(plan.shape[1] for plan in plans)
            if covered < n:
                plans.append(plan_columns(segment[1, covered:]))
            plan = plans[0] if len(plans) == 1 else np.concatenate(plans, axis=1)
            self.retires.append_rows(
                retires_from_events(
                    segment, plan, self.pc, start_order=len(self.retires)
                )
            )
            self._retired_events = cols.shape[1]
        if error is not None and not is_budget_error(error):
            self.retires.append_trap(self.pc, self._trap_insn())

    def _trap_insn(self) -> int:
        """The encoding at the faulting pc, or 0 when the fetch faults."""
        try:
            return self.memory.load_word(self.pc)
        except SimulationError:
            return 0

    def _run_budget_tail(self, executed: int, max_instructions: int) -> int:
        """Single-step the last few instructions before the budget line."""
        while not self.halted:
            if executed >= max_instructions:
                raise SimulationError(
                    f"instruction budget {max_instructions} exhausted at pc={self.pc:#x}"
                )
            self.step_reference()
            executed += 1
        return executed

    def run_reference(self, max_instructions: int = 10_000_000) -> int:
        """The seed interpreter loop (one :meth:`step_reference` per turn)."""
        executed = 0
        try:
            while not self.halted:
                if executed >= max_instructions:
                    raise SimulationError(
                        f"instruction budget {max_instructions} exhausted"
                        f" at pc={self.pc:#x}"
                    )
                self.step_reference()
                executed += 1
        except SimulationError as error:
            if self._record_retires and not is_budget_error(str(error)):
                self.retires.append_trap(self.pc, self._trap_insn())
            raise
        return executed

    def step(self) -> None:
        """Fetch, decode and execute a single instruction."""
        self.step_reference()

    def step_reference(self) -> None:
        """The reference scalar interpreter (one retirement per call)."""
        pc = self.pc
        word = self.memory.load_word(pc)
        ins = self._decoded_cache.get(pc)
        if ins is None or ins.word != word:
            ins = decode(word)
            self._decoded_cache[pc] = ins
        regs = self.registers
        m = ins.mnemonic
        rs1 = regs[ins.rs1]
        rs2 = regs[ins.rs2]
        rd = ins.rd
        imm = ins.imm
        next_pc = pc + 4
        op_class = cy.OP_ALU
        result = 0
        old_rd = regs[rd]
        address = 0

        if m == "addi":
            result = (rs1 + imm) & _MASK32
        elif m == "add":
            result = (rs1 + rs2) & _MASK32
        elif m == "sub":
            result = (rs1 - rs2) & _MASK32
        elif m == "lw":
            address = (rs1 + imm) & _MASK32
            result = self.memory.load_word(address)
            op_class = cy.OP_LOAD
        elif m == "sw":
            address = (rs1 + imm) & _MASK32
            self.memory.store_word(address, rs2)
            result = rs2
            op_class = cy.OP_STORE
            rd = 0
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = self._branch_taken(m, rs1, rs2)
            if taken:
                next_pc = (pc + imm) & _MASK32
                op_class = cy.OP_BRANCH_TAKEN
            else:
                op_class = cy.OP_BRANCH_NOT_TAKEN
            result = next_pc
            rd = 0
        elif m == "andi":
            result = rs1 & (imm & _MASK32)
        elif m == "ori":
            result = rs1 | (imm & _MASK32)
        elif m == "xori":
            result = rs1 ^ (imm & _MASK32)
        elif m == "slli":
            result = (rs1 << imm) & _MASK32
        elif m == "srli":
            result = rs1 >> imm
        elif m == "srai":
            result = (_signed(rs1) >> imm) & _MASK32
        elif m == "slti":
            result = 1 if _signed(rs1) < imm else 0
        elif m == "sltiu":
            result = 1 if rs1 < (imm & _MASK32) else 0
        elif m == "and":
            result = rs1 & rs2
        elif m == "or":
            result = rs1 | rs2
        elif m == "xor":
            result = rs1 ^ rs2
        elif m == "sll":
            result = (rs1 << (rs2 & 31)) & _MASK32
        elif m == "srl":
            result = rs1 >> (rs2 & 31)
        elif m == "sra":
            result = (_signed(rs1) >> (rs2 & 31)) & _MASK32
        elif m == "slt":
            result = 1 if _signed(rs1) < _signed(rs2) else 0
        elif m == "sltu":
            result = 1 if rs1 < rs2 else 0
        elif m == "mul":
            result = (_signed(rs1) * _signed(rs2)) & _MASK32
            op_class = cy.OP_MUL
        elif m == "mulh":
            result = ((_signed(rs1) * _signed(rs2)) >> 32) & _MASK32
            op_class = cy.OP_MUL
        elif m == "mulhsu":
            result = ((_signed(rs1) * rs2) >> 32) & _MASK32
            op_class = cy.OP_MUL
        elif m == "mulhu":
            result = ((rs1 * rs2) >> 32) & _MASK32
            op_class = cy.OP_MUL
        elif m == "div":
            op_class = cy.OP_DIV
            a, b = _signed(rs1), _signed(rs2)
            if b == 0:
                result = _MASK32
            elif a == -(1 << 31) and b == -1:
                result = a & _MASK32
            else:
                result = int(abs(a) // abs(b))
                if (a < 0) != (b < 0):
                    result = -result
                result &= _MASK32
        elif m == "divu":
            op_class = cy.OP_DIV
            result = _MASK32 if rs2 == 0 else (rs1 // rs2) & _MASK32
        elif m == "rem":
            op_class = cy.OP_DIV
            a, b = _signed(rs1), _signed(rs2)
            if b == 0:
                result = rs1
            elif a == -(1 << 31) and b == -1:
                result = 0
            else:
                result = abs(a) % abs(b)
                if a < 0:
                    result = -result
                result &= _MASK32
        elif m == "remu":
            op_class = cy.OP_DIV
            result = rs1 if rs2 == 0 else (rs1 % rs2) & _MASK32
        elif m == "lui":
            result = (imm << 12) & _MASK32
        elif m == "auipc":
            result = (pc + (imm << 12)) & _MASK32
        elif m == "jal":
            result = next_pc
            next_pc = (pc + imm) & _MASK32
            op_class = cy.OP_JUMP
        elif m == "jalr":
            result = next_pc
            next_pc = (rs1 + imm) & _MASK32 & ~1
            op_class = cy.OP_JUMP
        elif m == "lb":
            address = (rs1 + imm) & _MASK32
            byte = self.memory.load_byte(address)
            result = (byte - 256 if byte & 0x80 else byte) & _MASK32
            op_class = cy.OP_LOAD
        elif m == "lbu":
            address = (rs1 + imm) & _MASK32
            result = self.memory.load_byte(address)
            op_class = cy.OP_LOAD
        elif m == "lh":
            address = (rs1 + imm) & _MASK32
            half = self.memory.load_half(address)
            result = (half - 65536 if half & 0x8000 else half) & _MASK32
            op_class = cy.OP_LOAD
        elif m == "lhu":
            address = (rs1 + imm) & _MASK32
            result = self.memory.load_half(address)
            op_class = cy.OP_LOAD
        elif m == "sh":
            address = (rs1 + imm) & _MASK32
            self.memory.store_half(address, rs2)
            result = rs2 & 0xFFFF
            op_class = cy.OP_STORE
            rd = 0
        elif m == "sb":
            address = (rs1 + imm) & _MASK32
            self.memory.store_byte(address, rs2)
            result = rs2 & 0xFF
            op_class = cy.OP_STORE
            rd = 0
        elif m == "ebreak" or m == "ecall":
            self.halted = True
            op_class = cy.OP_SYSTEM
            rd = 0
        else:  # pragma: no cover - decode() rejects unknown mnemonics
            raise SimulationError(f"unhandled mnemonic {m}")

        if rd != 0:
            regs[rd] = result
        self.pc = next_pc
        self.cycle_count += cy.CYCLES[op_class]
        self.instruction_count += 1
        if self._record_events:
            self.events.append(op_class, word, rs1, rs2, result, old_rd, address, pc)
            if self._record_retires:
                # Live RVFI emission: every field computed from the
                # architectural state this step just touched — the
                # semantic anchor the projected engines are diffed
                # against.  ``rd`` is already 0 for formats without a
                # destination, matching the decoded plan columns.
                rmask = _LOAD_MASKS.get(m, 0)
                wmask = _STORE_MASKS.get(m, 0)
                self.retires.append(
                    pc,
                    next_pc,
                    word,
                    ins.rs1,
                    rs1,
                    ins.rs2,
                    rs2,
                    rd,
                    result if rd else 0,
                    0,
                    address,
                    rmask,
                    wmask,
                    result & _DATA_MASK_VALUES[rmask],
                    result & _DATA_MASK_VALUES[wmask],
                )
                self._retired_events += 1
        if (
            op_class == cy.OP_STORE
            and self._code_words
            and (address & 0xFFFFFFFC) in self._code_words
        ):
            # Same self-modifying-code contract as the threaded engine:
            # a store into translated code drops the cached blocks.
            self._invalidate_blocks()

    # ------------------------------------------------------------------
    @staticmethod
    def _branch_taken(mnemonic: str, rs1: int, rs2: int) -> bool:
        if mnemonic == "beq":
            return rs1 == rs2
        if mnemonic == "bne":
            return rs1 != rs2
        if mnemonic == "blt":
            return _signed(rs1) < _signed(rs2)
        if mnemonic == "bge":
            return _signed(rs1) >= _signed(rs2)
        if mnemonic == "bltu":
            return rs1 < rs2
        return rs1 >= rs2  # bgeu
