"""The RV32IM interpreter with execution-event recording.

The core executes pre-decoded instructions and, when
``record_events=True``, records one event per retired instruction into
a columnar :class:`EventLog`.  Events carry everything the CMOS power
model needs: the fetched instruction word, both operand values, the
result, the overwritten destination value (for Hamming-distance
leakage) and the memory address/data where applicable.  The expansion
of events into per-cycle power samples lives in
:mod:`repro.power.leakage`, which consumes the log's int64 column
arrays directly — no per-event Python objects are materialised on the
hot path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.riscv import cycles as cy
from repro.riscv.isa import Decoded, decode
from repro.riscv.memory import Memory

_MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


class ExecutionEvent(NamedTuple):
    """Everything observable about one retired instruction."""

    op_class: int  # cy.OP_* constant
    word: int  # the fetched instruction encoding
    rs1_value: int
    rs2_value: int
    result: int  # rd value written / store data / branch target
    old_rd: int  # destination register's previous content
    address: int  # memory address for loads/stores, else 0
    pc: int


class EventLog(Sequence):
    """Structure-of-arrays store of execution events.

    One preallocated ``(8, capacity)`` int64 matrix holds every
    :class:`ExecutionEvent` field as a row, grown geometrically on
    overflow.  The power model reads the columns wholesale via
    :meth:`columns` / the per-field properties; sequence access
    (``log[i]``, iteration, ``log == [...]``) materialises
    :class:`ExecutionEvent` tuples on demand so existing callers keep
    working.
    """

    _NUM_FIELDS = len(ExecutionEvent._fields)

    def __init__(self, capacity: int = 1024) -> None:
        self._data = np.zeros((self._NUM_FIELDS, max(int(capacity), 1)), dtype=np.int64)
        self._length = 0

    # -- recording ------------------------------------------------------
    def append(
        self,
        op_class: int,
        word: int,
        rs1_value: int,
        rs2_value: int,
        result: int,
        old_rd: int,
        address: int,
        pc: int,
    ) -> None:
        """Record one event (hot path: a single column store)."""
        n = self._length
        data = self._data
        if n == data.shape[1]:
            data = np.concatenate([data, np.zeros_like(data)], axis=1)
            self._data = data
        data[:, n] = (op_class, word, rs1_value, rs2_value, result, old_rd, address, pc)
        self._length = n + 1

    def clear(self) -> None:
        """Drop all events; the buffer is kept for reuse."""
        self._length = 0

    # -- columnar access (what the vectorized power model consumes) ----
    def columns(self) -> np.ndarray:
        """The ``(8, len(self))`` int64 field matrix (a view, not a copy)."""
        return self._data[:, : self._length]

    def column(self, name: str) -> np.ndarray:
        """One named field as an int64 vector (a view, not a copy)."""
        return self._data[ExecutionEvent._fields.index(name), : self._length]

    @property
    def op_class(self) -> np.ndarray:
        return self.column("op_class")

    @property
    def word(self) -> np.ndarray:
        return self.column("word")

    @property
    def rs1_value(self) -> np.ndarray:
        return self.column("rs1_value")

    @property
    def rs2_value(self) -> np.ndarray:
        return self.column("rs2_value")

    @property
    def result(self) -> np.ndarray:
        return self.column("result")

    @property
    def old_rd(self) -> np.ndarray:
        return self.column("old_rd")

    @property
    def address(self) -> np.ndarray:
        return self.column("address")

    @property
    def pc(self) -> np.ndarray:
        return self.column("pc")

    # -- sequence compatibility ----------------------------------------
    def __len__(self) -> int:
        return self._length

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[ExecutionEvent, List[ExecutionEvent]]:
        if isinstance(index, slice):
            return [
                ExecutionEvent(*(int(v) for v in self._data[:, i]))
                for i in range(*index.indices(self._length))
            ]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("event index out of range")
        return ExecutionEvent(*(int(v) for v in self._data[:, index]))

    def __iter__(self) -> Iterator[ExecutionEvent]:
        for i in range(self._length):
            yield ExecutionEvent(*(int(v) for v in self._data[:, i]))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventLog):
            return np.array_equal(self.columns(), other.columns())
        if isinstance(other, (list, tuple)):
            return len(other) == self._length and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"EventLog(length={self._length})"


class Cpu:
    """A PicoRV32-like RV32IM core.

    Parameters
    ----------
    memory:
        The attached RAM; defaults to 1 MiB.
    record_events:
        When True, :attr:`events` collects one entry per instruction;
        turn this off for functional-only runs (it is the dominant cost).
        Disabling recording (at construction or later) empties the log,
        so :attr:`events` never exposes stale entries from a previous
        recorded run.
    """

    def __init__(
        self, memory: Optional[Memory] = None, record_events: bool = True
    ) -> None:
        self.memory = memory if memory is not None else Memory()
        self.registers: List[int] = [0] * 32
        self.pc = 0
        self.cycle_count = 0
        self.instruction_count = 0
        self.halted = False
        self.events: EventLog = EventLog()
        self.record_events = record_events
        self._decoded_cache: Dict[int, Decoded] = {}

    @property
    def record_events(self) -> bool:
        return self._record_events

    @record_events.setter
    def record_events(self, enabled: bool) -> None:
        self._record_events = bool(enabled)
        if not self._record_events:
            self.events.clear()

    # ------------------------------------------------------------------
    def load_program(self, words: List[int], base_address: int = 0) -> None:
        """Write a program into memory, reset state, and point pc at it."""
        self.memory.load_program(words, base_address)
        self.registers = [0] * 32
        self.pc = base_address
        self.cycle_count = 0
        self.instruction_count = 0
        self.halted = False
        self.events.clear()
        self._decoded_cache = {}

    def write_register(self, index: int, value: int) -> None:
        """Set a register (used to pass arguments into kernels)."""
        if index != 0:
            self.registers[index] = value & _MASK32

    def read_register(self, index: int) -> int:
        """Read a register value (unsigned 32-bit)."""
        return self.registers[index]

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 10_000_000) -> int:
        """Execute until ``ebreak`` or the instruction budget runs out.

        Returns the number of instructions retired.  Raises
        :class:`SimulationError` if the budget is exhausted (runaway
        program) or an illegal instruction is hit.
        """
        executed = 0
        while not self.halted:
            if executed >= max_instructions:
                raise SimulationError(
                    f"instruction budget {max_instructions} exhausted at pc={self.pc:#x}"
                )
            self.step()
            executed += 1
        return executed

    def step(self) -> None:
        """Fetch, decode and execute a single instruction."""
        pc = self.pc
        word = self.memory.load_word(pc)
        ins = self._decoded_cache.get(pc)
        if ins is None or ins.word != word:
            ins = decode(word)
            self._decoded_cache[pc] = ins
        regs = self.registers
        m = ins.mnemonic
        rs1 = regs[ins.rs1]
        rs2 = regs[ins.rs2]
        rd = ins.rd
        imm = ins.imm
        next_pc = pc + 4
        op_class = cy.OP_ALU
        result = 0
        old_rd = regs[rd]
        address = 0

        if m == "addi":
            result = (rs1 + imm) & _MASK32
        elif m == "add":
            result = (rs1 + rs2) & _MASK32
        elif m == "sub":
            result = (rs1 - rs2) & _MASK32
        elif m == "lw":
            address = (rs1 + imm) & _MASK32
            result = self.memory.load_word(address)
            op_class = cy.OP_LOAD
        elif m == "sw":
            address = (rs1 + imm) & _MASK32
            self.memory.store_word(address, rs2)
            result = rs2
            op_class = cy.OP_STORE
            rd = 0
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = self._branch_taken(m, rs1, rs2)
            if taken:
                next_pc = (pc + imm) & _MASK32
                op_class = cy.OP_BRANCH_TAKEN
            else:
                op_class = cy.OP_BRANCH_NOT_TAKEN
            result = next_pc
            rd = 0
        elif m == "andi":
            result = rs1 & (imm & _MASK32)
        elif m == "ori":
            result = rs1 | (imm & _MASK32)
        elif m == "xori":
            result = rs1 ^ (imm & _MASK32)
        elif m == "slli":
            result = (rs1 << imm) & _MASK32
        elif m == "srli":
            result = rs1 >> imm
        elif m == "srai":
            result = (_signed(rs1) >> imm) & _MASK32
        elif m == "slti":
            result = 1 if _signed(rs1) < imm else 0
        elif m == "sltiu":
            result = 1 if rs1 < (imm & _MASK32) else 0
        elif m == "and":
            result = rs1 & rs2
        elif m == "or":
            result = rs1 | rs2
        elif m == "xor":
            result = rs1 ^ rs2
        elif m == "sll":
            result = (rs1 << (rs2 & 31)) & _MASK32
        elif m == "srl":
            result = rs1 >> (rs2 & 31)
        elif m == "sra":
            result = (_signed(rs1) >> (rs2 & 31)) & _MASK32
        elif m == "slt":
            result = 1 if _signed(rs1) < _signed(rs2) else 0
        elif m == "sltu":
            result = 1 if rs1 < rs2 else 0
        elif m == "mul":
            result = (_signed(rs1) * _signed(rs2)) & _MASK32
            op_class = cy.OP_MUL
        elif m == "mulh":
            result = ((_signed(rs1) * _signed(rs2)) >> 32) & _MASK32
            op_class = cy.OP_MUL
        elif m == "mulhsu":
            result = ((_signed(rs1) * rs2) >> 32) & _MASK32
            op_class = cy.OP_MUL
        elif m == "mulhu":
            result = ((rs1 * rs2) >> 32) & _MASK32
            op_class = cy.OP_MUL
        elif m == "div":
            op_class = cy.OP_DIV
            a, b = _signed(rs1), _signed(rs2)
            if b == 0:
                result = _MASK32
            elif a == -(1 << 31) and b == -1:
                result = a & _MASK32
            else:
                result = int(abs(a) // abs(b))
                if (a < 0) != (b < 0):
                    result = -result
                result &= _MASK32
        elif m == "divu":
            op_class = cy.OP_DIV
            result = _MASK32 if rs2 == 0 else (rs1 // rs2) & _MASK32
        elif m == "rem":
            op_class = cy.OP_DIV
            a, b = _signed(rs1), _signed(rs2)
            if b == 0:
                result = rs1
            elif a == -(1 << 31) and b == -1:
                result = 0
            else:
                result = abs(a) % abs(b)
                if a < 0:
                    result = -result
                result &= _MASK32
        elif m == "remu":
            op_class = cy.OP_DIV
            result = rs1 if rs2 == 0 else (rs1 % rs2) & _MASK32
        elif m == "lui":
            result = (imm << 12) & _MASK32
        elif m == "auipc":
            result = (pc + (imm << 12)) & _MASK32
        elif m == "jal":
            result = next_pc
            next_pc = (pc + imm) & _MASK32
            op_class = cy.OP_JUMP
        elif m == "jalr":
            result = next_pc
            next_pc = (rs1 + imm) & _MASK32 & ~1
            op_class = cy.OP_JUMP
        elif m == "lb":
            address = (rs1 + imm) & _MASK32
            byte = self.memory.load_byte(address)
            result = (byte - 256 if byte & 0x80 else byte) & _MASK32
            op_class = cy.OP_LOAD
        elif m == "lbu":
            address = (rs1 + imm) & _MASK32
            result = self.memory.load_byte(address)
            op_class = cy.OP_LOAD
        elif m == "lh":
            address = (rs1 + imm) & _MASK32
            half = self.memory.load_half(address)
            result = (half - 65536 if half & 0x8000 else half) & _MASK32
            op_class = cy.OP_LOAD
        elif m == "lhu":
            address = (rs1 + imm) & _MASK32
            result = self.memory.load_half(address)
            op_class = cy.OP_LOAD
        elif m == "sh":
            address = (rs1 + imm) & _MASK32
            self.memory.store_half(address, rs2)
            result = rs2 & 0xFFFF
            op_class = cy.OP_STORE
            rd = 0
        elif m == "sb":
            address = (rs1 + imm) & _MASK32
            self.memory.store_byte(address, rs2)
            result = rs2 & 0xFF
            op_class = cy.OP_STORE
            rd = 0
        elif m == "ebreak" or m == "ecall":
            self.halted = True
            op_class = cy.OP_SYSTEM
            rd = 0
        else:  # pragma: no cover - decode() rejects unknown mnemonics
            raise SimulationError(f"unhandled mnemonic {m}")

        if rd != 0:
            regs[rd] = result
        self.pc = next_pc
        self.cycle_count += cy.CYCLES[op_class]
        self.instruction_count += 1
        if self._record_events:
            self.events.append(op_class, word, rs1, rs2, result, old_rd, address, pc)

    # ------------------------------------------------------------------
    @staticmethod
    def _branch_taken(mnemonic: str, rs1: int, rs2: int) -> bool:
        if mnemonic == "beq":
            return rs1 == rs2
        if mnemonic == "bne":
            return rs1 != rs2
        if mnemonic == "blt":
            return _signed(rs1) < _signed(rs2)
        if mnemonic == "bge":
            return _signed(rs1) >= _signed(rs2)
        if mnemonic == "bltu":
            return rs1 < rs2
        return rs1 >= rs2  # bgeu
