"""The SEAL Gaussian-sampling kernel in RV32IM assembly.

This is the device-side realisation of Fig. 2 of the paper: an outer
loop over ``coeff_count`` coefficients, each iteration drawing one
clipped Gaussian sample (the "distribution function call") and then
assigning it through the *vulnerable* ``if noise > 0 / elif noise < 0 /
else`` branch structure, including the ``noise = -noise`` negation and
the ``coeff_modulus[j] - noise`` subtraction on the negative path.

The continuous sampling of ``std::normal_distribution`` (libstdc++ uses
the Marsaglia polar method, a *time-variant* rejection loop) is realised
in 32-bit fixed point:

1. draw ``u, v`` uniform in Q15 from a xorshift32 PRNG;
2. ``s = u^2 + v^2`` (Q30); reject unless ``0 < s < 1``;
3. ``G = sqrt(-2 ln(s) / s)`` via a binary log (12 squaring iterations)
   and an integer Newton square root;
4. ``z = u * G`` is a standard normal sample; ``noise = round(sigma*z)``;
5. reject when ``|noise|`` exceeds the clipping bound (SEAL's
   ``noise_max_deviation``) and resample.

The rejection loops and the data-dependent normalisation make execution
time-variant, exactly the property that forces the attack's trace
segmentation stage (section III-C of the paper).

``GoldenPolarSampler`` is a bit-exact Python model of the same integer
pipeline; tests assert that the CPU and the model agree sample for
sample, and that the output distribution matches the clipped rounded
Gaussian.

Register allocation::

    a0 out base   a1 n      a2 k (limbs)   a3 modulus table
    a4 seed       a5 max_deviation
    s0 PRNG state s1 u      s2 mantissa    s3 frac bits
    s4 p (msb)    s5 noise  s6 i           s7 L / T
    s8 G          s9 2^30   s10 2^29       s11 sigma_Q16
    a7 saved mantissa
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: sigma = 3.19 in Q16 fixed point (round(3.19 * 65536)).
GOLDEN_SIGMA_Q16 = 209060

#: ln(2) in Q14 fixed point.
_LN2_Q14 = 11357

_MASK32 = 0xFFFFFFFF


def gaussian_sampler_source(sigma_q16: int = GOLDEN_SIGMA_Q16) -> str:
    """Return the kernel's assembly source.

    The caller passes runtime parameters in registers (see module doc).
    """
    return f"""
# --- setup -------------------------------------------------------------
start:
    bnez  a4, seed_ok
    li    a4, 1                 # xorshift32 state must be nonzero
seed_ok:
    mv    s0, a4
    li    s9, 0x40000000        # 2^30
    li    s10, 0x20000000       # 2^29
    li    s11, {sigma_q16}      # sigma in Q16
    li    s6, 0                 # i = 0

# --- outer loop: one coefficient per iteration ---------------------------
outer_loop:

# --- Marsaglia polar rejection loop (the "distribution function call") --
sample_loop:
    # u <- next 16-bit draw, sign-extended (Q15 in [-1, 1))
    slli  t0, s0, 13
    xor   s0, s0, t0
    srli  t0, s0, 17
    xor   s0, s0, t0
    slli  t0, s0, 5
    xor   s0, s0, t0
    slli  s1, s0, 16
    srai  s1, s1, 16            # u
    # v <- next draw
    slli  t0, s0, 13
    xor   s0, s0, t0
    srli  t0, s0, 17
    xor   s0, s0, t0
    slli  t0, s0, 5
    xor   s0, s0, t0
    slli  t3, s0, 16
    srai  t3, t3, 16            # v
    # s = u*u + v*v  (Q30)
    mul   t4, s1, s1
    mul   t5, t3, t3
    add   t4, t4, t5
    bgeu  t4, s9, sample_loop   # reject s >= 1 (unsigned also catches 2^31)
    beqz  t4, sample_loop       # reject s == 0

# --- normalise s: mantissa in [2^29, 2^30), p = msb index ---------------
    mv    s2, t4
    li    s4, 29
norm_loop:
    bgeu  s2, s10, norm_done
    slli  s2, s2, 1
    addi  s4, s4, -1
    j     norm_loop
norm_done:
    li    t0, 14
    blt   s4, t0, sample_loop   # reject implausibly tiny s (p < 14)
    mv    a7, s2                # save mantissa for the division below

# --- frac = fractional bits of log2(mantissa), 12 squaring rounds -------
    li    s3, 0
    li    t5, 12
frac_loop:
    mulhu t2, s2, s2
    mul   t3, s2, s2
    slli  t2, t2, 3
    srli  t3, t3, 29
    or    t2, t2, t3            # y^2 in Q29
    slli  s3, s3, 1
    bltu  t2, s9, frac_nocarry
    srli  t2, t2, 1
    ori   s3, s3, 1
frac_nocarry:
    mv    s2, t2
    addi  t5, t5, -1
    bnez  t5, frac_loop

# --- L = -ln(s/2^30) in Q12 ---------------------------------------------
    li    t0, 30
    sub   t0, t0, s4
    slli  t0, t0, 12
    sub   t0, t0, s3            # -log2(x) in Q12
    li    t1, {_LN2_Q14}
    mul   t0, t0, t1
    srli  t0, t0, 14
    mv    s7, t0                # L_Q12

# --- T = 2L/x in Q14 (saturating) ----------------------------------------
    slli  t0, s7, 14
    srli  t1, a7, 15
    divu  t2, t0, t1            # Q0 = (L<<14) / (mantissa>>15)
    li    t3, 33
    sub   t3, t3, s4            # shift = 33 - p
    li    t4, 0x7FFFFFFF
    srl   t5, t4, t3
    bltu  t2, t5, t_nosat
    mv    t6, t4                # saturate huge T (tiny s; clipped later)
    j     t_done
t_nosat:
    sll   t6, t2, t3
t_done:
    mv    s7, t6                # T_Q14

# --- G = isqrt(T_Q14)  (= sqrt(T) in Q7) ---------------------------------
    mv    t0, s7
    li    t1, 0
bitlen_loop:
    beqz  t0, bitlen_done
    srli  t0, t0, 1
    addi  t1, t1, 1
    j     bitlen_loop
bitlen_done:
    addi  t1, t1, 1
    srli  t1, t1, 1
    li    s8, 1
    sll   s8, s8, t1            # x0 >= sqrt(T)
newton_loop:
    divu  t2, s7, s8
    add   t2, t2, s8
    srli  t2, t2, 1
    bgeu  t2, s8, newton_done
    mv    s8, t2
    j     newton_loop
newton_done:

# --- noise = round(sigma * u * G)  ---------------------------------------
    mul   t0, s1, s8            # z in Q22 (u Q15 * G Q7)
    mulh  t1, t0, s11           # high word of z * sigma_Q16 (Q38)
    addi  t1, t1, 32
    srai  t1, t1, 6             # round(z*sigma)
    mv    s5, t1                # <-- vulnerability 2: value assignment

# --- clipping (SEAL resamples when |x| > max_deviation) ------------------
    bgt   s5, a5, sample_loop
    neg   t0, a5
    blt   s5, t0, sample_loop

# --- Fig. 2 sign assignment (vulnerability 1: the branches) --------------
    bgtz  s5, pos_branch        # if (noise > 0)
    bltz  s5, neg_branch        # else if (noise < 0)

zero_branch:                    # else: coefficient = 0
    li    t0, 0
    slli  t1, s6, 2
    add   t1, t1, a0
    slli  t2, a1, 2
zero_loop:
    sw    zero, 0(t1)
    add   t1, t1, t2
    addi  t0, t0, 1
    blt   t0, a2, zero_loop
    j     assign_done

pos_branch:                     # poly[i + j*n] = noise
    li    t0, 0
    slli  t1, s6, 2
    add   t1, t1, a0
    slli  t2, a1, 2
pos_loop:
    sw    s5, 0(t1)
    add   t1, t1, t2
    addi  t0, t0, 1
    blt   t0, a2, pos_loop
    j     assign_done

neg_branch:
    neg   s5, s5                # <-- vulnerability 3: the negation
    li    t0, 0
    slli  t1, s6, 2
    add   t1, t1, a0
    slli  t2, a1, 2
    mv    t6, a3
neg_loop:
    lw    t4, 0(t6)
    sub   t4, t4, s5            # coeff_modulus[j] - noise
    sw    t4, 0(t1)
    add   t1, t1, t2
    addi  t6, t6, 4
    addi  t0, t0, 1
    blt   t0, a2, neg_loop

assign_done:
    addi  s6, s6, 1
    blt   s6, a1, outer_loop

# --- epilogue: the encryption continues after the sampler returns ---------
# (keeps the last coefficient's post-assignment trace populated, like the
# real set_poly_coeffs_normal which is followed by further encryption code)
    li    t5, 40
epilogue:
    slli  t0, s0, 13
    xor   s0, s0, t0
    srli  t0, s0, 17
    xor   s0, s0, t0
    slli  t0, s0, 5
    xor   s0, s0, t0
    addi  t5, t5, -1
    bnez  t5, epilogue
    ebreak
"""


class GoldenPolarSampler:
    """Bit-exact Python model of the assembly kernel's sampling pipeline.

    Used to (a) verify the CPU executes the kernel correctly and (b)
    generate device-identical values quickly on the host.
    """

    def __init__(
        self,
        seed: int,
        max_deviation: int = 41,
        sigma_q16: int = GOLDEN_SIGMA_Q16,
    ) -> None:
        self.state = seed & _MASK32 or 1
        self.max_deviation = max_deviation
        self.sigma_q16 = sigma_q16

    # -- xorshift32, identical to the assembly ---------------------------
    def _next_rand(self) -> int:
        x = self.state
        x ^= (x << 13) & _MASK32
        x ^= x >> 17
        x ^= (x << 5) & _MASK32
        self.state = x
        return x

    def _draw_q15(self) -> int:
        value = self._next_rand() & 0xFFFF
        return value - 0x10000 if value & 0x8000 else value

    # --------------------------------------------------------------------
    def sample(self) -> int:
        """Draw one clipped, rounded Gaussian integer, exactly as the device."""
        while True:
            u = self._draw_q15()
            v = self._draw_q15()
            s = u * u + v * v
            if s >= 1 << 30 or s == 0:
                continue
            # normalise
            mantissa = s
            p = 29
            while mantissa < 1 << 29:
                mantissa <<= 1
                p -= 1
            if p < 14:
                continue
            # binary log fractional bits
            y = mantissa
            frac = 0
            for _ in range(12):
                ysq = y * y
                y2 = ysq >> 29
                frac <<= 1
                if y2 >= 1 << 30:
                    y2 >>= 1
                    frac |= 1
                y = y2
            neg_log2 = ((30 - p) << 12) - frac
            l_q12 = (neg_log2 * _LN2_Q14) >> 14
            # T = 2L/x in Q14, saturating
            q0 = (l_q12 << 14) // (mantissa >> 15)
            shift = 33 - p
            if q0 >= (0x7FFFFFFF >> shift):
                t_q14 = 0x7FFFFFFF
            else:
                t_q14 = q0 << shift
            g = _isqrt_newton(t_q14)
            z_q22 = u * g
            prod = z_q22 * self.sigma_q16
            hi = prod >> 32
            noise = (hi + 32) >> 6
            if -self.max_deviation <= noise <= self.max_deviation:
                return noise

    def sample_vector(self, count: int) -> List[int]:
        """Draw ``count`` samples."""
        return [self.sample() for _ in range(count)]


def _isqrt_newton(value: int) -> int:
    """Integer square root with the same iteration as the assembly."""
    if value == 0:
        # mirrors the assembly: the Newton loop on T=0 settles at 0
        return 0
    x = 1 << ((value.bit_length() + 1) >> 1)
    while True:
        nxt = (value // x + x) >> 1
        if nxt >= x:
            return x
        x = nxt
