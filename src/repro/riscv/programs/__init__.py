"""RV32IM kernels executed by the simulated PicoRV32 core."""

from repro.riscv.programs.gaussian import (
    GOLDEN_SIGMA_Q16,
    GoldenPolarSampler,
    gaussian_sampler_source,
)

__all__ = ["GOLDEN_SIGMA_Q16", "GoldenPolarSampler", "gaussian_sampler_source"]
