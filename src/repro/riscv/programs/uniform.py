"""On-device uniform and ternary sampling kernels.

SEAL's encryption also samples the uniform public polynomial ``a``
(key generation) and the ternary encryption sample ``u`` on the target;
these kernels complete the device-side picture so a whole encryption's
randomness can run on the simulated PicoRV32.

The ternary kernel mirrors SEAL's ``sample_poly_ternary``: draw a
uniform word, reduce modulo 3, map {0,1,2} -> {0,1,q-1}.  Note that the
mapping uses *branches* on the sampled value - a deliberate fidelity
choice: the paper attacks the Gaussian sampler, but nothing makes the
ternary sampler constant-flow either (a natural future-work target the
repository keeps observable).

Register use mirrors the Gaussian kernel: a0 out base, a1 n, a2 k,
a3 modulus table, a4 seed.
"""

from __future__ import annotations

from typing import List

_MASK32 = 0xFFFFFFFF


def ternary_sampler_source() -> str:
    """RV32IM source sampling n ternary coefficients into the buffer."""
    return """
start:
    bnez  a4, seed_ok
    li    a4, 1
seed_ok:
    mv    s0, a4
    li    s6, 0                 # i = 0
outer_loop:
    # xorshift32 draw
    slli  t0, s0, 13
    xor   s0, s0, t0
    srli  t0, s0, 17
    xor   s0, s0, t0
    slli  t0, s0, 5
    xor   s0, s0, t0
    li    t1, 3
    remu  t2, s0, t1            # t2 in {0, 1, 2}
    li    t3, 2
    beq   t2, t3, minus_one     # 2 -> q_j - 1
    # 0 or 1: store the value directly in every limb
    li    t0, 0
    slli  t1, s6, 2
    add   t1, t1, a0
    slli  t4, a1, 2
direct_loop:
    sw    t2, 0(t1)
    add   t1, t1, t4
    addi  t0, t0, 1
    blt   t0, a2, direct_loop
    j     next
minus_one:
    li    t0, 0
    slli  t1, s6, 2
    add   t1, t1, a0
    slli  t4, a1, 2
    mv    t6, a3
minus_loop:
    lw    t5, 0(t6)
    addi  t5, t5, -1            # q_j - 1
    sw    t5, 0(t1)
    add   t1, t1, t4
    addi  t6, t6, 4
    addi  t0, t0, 1
    blt   t0, a2, minus_loop
next:
    addi  s6, s6, 1
    blt   s6, a1, outer_loop
    ebreak
"""


def uniform_sampler_source() -> str:
    """RV32IM source sampling n uniform residues per limb.

    Rejection sampling per limb: draw 32-bit words until one falls below
    the largest multiple of q_j (avoiding modulo bias), then reduce.
    """
    return """
start:
    bnez  a4, seed_ok
    li    a4, 1
seed_ok:
    mv    s0, a4
    li    s6, 0                 # i = 0
outer_loop:
    li    s7, 0                 # j = 0
    slli  s8, s6, 2
    add   s8, s8, a0            # &poly[0][i]
    slli  s9, a1, 2             # stride
    mv    s10, a3               # modulus pointer
limb_loop:
    lw    s11, 0(s10)           # q_j
    # bound = floor(2^32 / q_j) * q_j, computed as 2^32 - (2^32 mod q_j)
    neg   t0, s11
    remu  t0, t0, s11           # (2^32 - q_j) mod q_j == 2^32 mod q_j
    neg   t1, t0                # bound = 2^32 - (2^32 mod q_j) (mod 2^32)
draw:
    slli  t2, s0, 13
    xor   s0, s0, t2
    srli  t2, s0, 17
    xor   s0, s0, t2
    slli  t2, s0, 5
    xor   s0, s0, t2
    beqz  t1, accept            # bound == 2^32: no rejection needed
    bgeu  s0, t1, draw          # biased region: redraw
accept:
    remu  t3, s0, s11
    sw    t3, 0(s8)
    add   s8, s8, s9
    addi  s10, s10, 4
    addi  s7, s7, 1
    blt   s7, a2, limb_loop
    addi  s6, s6, 1
    blt   s6, a1, outer_loop
    ebreak
"""


class GoldenTernarySampler:
    """Host model of the ternary kernel (same PRNG, same mapping)."""

    def __init__(self, seed: int) -> None:
        self.state = seed & _MASK32 or 1

    def _next(self) -> int:
        x = self.state
        x ^= (x << 13) & _MASK32
        x ^= x >> 17
        x ^= (x << 5) & _MASK32
        self.state = x
        return x

    def sample_vector(self, count: int) -> List[int]:
        """Signed values in {-1, 0, 1}."""
        out = []
        for _ in range(count):
            draw = self._next() % 3
            out.append(-1 if draw == 2 else draw)
        return out
