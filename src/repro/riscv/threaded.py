"""Threaded-code translation of RV32IM basic blocks.

The seed interpreter walked a ~40-arm mnemonic string chain and paid a
per-instruction columnar store for every retired instruction.  This
module replaces that dispatch with a small template JIT:

- :func:`translate` decodes a **basic block** — a straight-line run of
  instructions ending at a branch/``jalr``/system op (unconditional
  ``jal`` jumps are followed, so a block may span jumps) — and compiles
  it once into a specialized Python function.  Each instruction's
  handler template (indexed by the dense :data:`~repro.riscv.isa
  .OPCODE_IDS` opcode id) is specialized with its immediates, register
  indices, op class and pc pre-bound as literals, then the handlers are
  concatenated into one straight-line function body, so the
  fetch/decode/dispatch overhead is paid once per block instead of once
  per retirement.
- Within a block the generator performs local value propagation: a
  register written earlier in the block is read back as the writing
  instruction's local (no ``regs[]`` round-trip), and constant results
  (immediates folded at translation time) become literals.
- Compiled blocks are cached process-wide keyed on ``(start_pc,
  words)`` — the decoded content, not the memory object — so repeated
  device runs of the same kernel never recompile.  The block-extent
  walk peeks only at major opcodes, so a cache hit never runs
  ``decode()`` at all.
- Event recording splits into a *static* plan (op class, instruction
  word, pc, constant operands — known at translation time) and a small
  deduplicated *dynamic* tail: each distinct runtime value is streamed
  once per block execution (one ``array('q').extend``) and a cached
  gather map fans it out to every event cell that carries it.  The
  :class:`~repro.riscv.cpu.EventLog` materialises both in bulk via
  :meth:`TranslatedBlock.flush_template`.

Exact-semantics contract: registers, pc, ``cycle_count``,
``instruction_count``, the event log, and every ``SimulationError``
(illegal instruction, memory fault, budget exhaustion) are bit-for-bit
identical to the scalar reference interpreter
(:meth:`~repro.riscv.cpu.Cpu.step_reference`); ``tests/riscv/
test_threaded_engine.py`` asserts this per mnemonic and on the full
sampling kernels.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.riscv import cycles as cy
from repro.riscv.isa import NUM_OPCODES, OPCODE_IDS, branch_offset, decode, jal_offset
from repro.riscv.retire import plan_columns

_MASK32 = 0xFFFFFFFF

#: Maximum instructions per translated block (straight-line runs longer
#: than this split into chained blocks).
MAX_BLOCK_INSTRUCTIONS = 64

#: EventLog row indices (must match ``ExecutionEvent._fields`` order).
_ROW_OP = 0
_ROW_WORD = 1
_ROW_RS1 = 2
_ROW_RS2 = 3
_ROW_RESULT = 4
_ROW_OLD = 5
_ROW_ADDR = 6
_ROW_PC = 7

_TERMINATORS = frozenset(
    ["beq", "bne", "blt", "bge", "bltu", "bgeu", "jalr", "ebreak", "ecall"]
)

#: Major opcodes that always end a block (jalr / system).  Conditional
#: branches (0x63) only end one when the predicted direction cannot be
#: followed (backward edge already in the block, degenerate target).
_TERMINATOR_OPCODES = frozenset([0x67, 0x73])

_BRANCH_CONDS = {
    "beq": ("{a} == {b}", False, False),
    "bne": ("{a} != {b}", False, False),
    "blt": ("{sa} < {sb}", True, True),
    "bge": ("{sa} >= {sb}", True, True),
    "bltu": ("{a} < {b}", False, False),
    "bgeu": ("{a} >= {b}", False, False),
}

#: Negated conditions, for superblock side exits guarding the
#: *unpredicted* branch direction.
_BRANCH_INV = {
    "beq": "{a} != {b}",
    "bne": "{a} == {b}",
    "blt": "{sa} >= {sb}",
    "bge": "{sa} < {sb}",
    "bltu": "{a} >= {b}",
    "bgeu": "{a} < {b}",
}

# ----------------------------------------------------------------------
# Handler templates, indexed by dense opcode id.
#
# Each entry is (kind, payload...); the payload of the ALU kinds is the
# result expression with {a}/{b} (unsigned operands) and {sa}/{sb}
# (sign-converted operands) placeholders.
# ----------------------------------------------------------------------
_ALU_RR = {
    "add": "({a} + {b}) & 4294967295",
    "sub": "({a} - {b}) & 4294967295",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "sll": "({a} << ({b} & 31)) & 4294967295",
    "srl": "{a} >> ({b} & 31)",
    "sra": "({sa} >> ({b} & 31)) & 4294967295",
    "slt": "1 if {sa} < {sb} else 0",
    "sltu": "1 if {a} < {b} else 0",
    "mul": "({a} * {b}) & 4294967295",
    "mulh": "(({sa} * {sb}) >> 32) & 4294967295",
    "mulhsu": "(({sa} * {b}) >> 32) & 4294967295",
    "mulhu": "(({a} * {b}) >> 32) & 4294967295",
}

#: I-type ALU: (expression, imm_transform) where the transform renders
#: the decoded immediate into the {b} literal.
_ALU_RI = {
    "addi": ("({a} + {b}) & 4294967295", "raw"),
    "andi": ("{a} & {b}", "mask"),
    "ori": ("{a} | {b}", "mask"),
    "xori": ("{a} ^ {b}", "mask"),
    "slli": ("({a} << {b}) & 4294967295", "raw"),
    "srli": ("{a} >> {b}", "raw"),
    "srai": ("({sa} >> {b}) & 4294967295", "raw"),
    "slti": ("1 if {sa} < {b} else 0", "raw"),
    "sltiu": ("1 if {a} < {b} else 0", "mask"),
}

_LOADS = {
    "lw": ("load_word", None),
    "lbu": ("load_byte", None),
    "lhu": ("load_half", None),
    "lb": ("load_byte", (128, 256)),
    "lh": ("load_half", (32768, 65536)),
}

_STORES = {
    "sw": ("store_word", None),
    "sh": ("store_half", 65535),
    "sb": ("store_byte", 255),
}


def _build_templates() -> List[Optional[Tuple]]:
    table: List[Optional[Tuple]] = [None] * NUM_OPCODES
    for m, expr in _ALU_RR.items():
        cls = cy.OP_MUL if m.startswith("mul") else cy.OP_ALU
        table[OPCODE_IDS[m]] = ("alu_rr", expr, cls)
    for m, (expr, transform) in _ALU_RI.items():
        table[OPCODE_IDS[m]] = ("alu_ri", expr, transform)
    for m in ("div", "divu", "rem", "remu"):
        table[OPCODE_IDS[m]] = ("divrem", m)
    for m, (method, sign) in _LOADS.items():
        table[OPCODE_IDS[m]] = ("load", method, sign)
    for m, (method, result_mask) in _STORES.items():
        table[OPCODE_IDS[m]] = ("store", method, result_mask)
    for m, (cond, sa, sb) in _BRANCH_CONDS.items():
        table[OPCODE_IDS[m]] = ("branch", cond, sa, sb)
    table[OPCODE_IDS["jal"]] = ("jal",)
    table[OPCODE_IDS["jalr"]] = ("jalr",)
    table[OPCODE_IDS["lui"]] = ("lui",)
    table[OPCODE_IDS["auipc"]] = ("auipc",)
    table[OPCODE_IDS["ebreak"]] = ("system",)
    table[OPCODE_IDS["ecall"]] = ("system",)
    return table


_HANDLER_TEMPLATES = _build_templates()

_BRANCH_IDS = frozenset(OPCODE_IDS[m] for m in _BRANCH_CONDS)


class TranslatedBlock:
    """One compiled basic block plus its event-flush metadata."""

    __slots__ = (
        "length",
        "pcs",
        "words",
        "run_recording",
        "run_fast",
        "uniq_prefix",
        "_statics",
        "_dyn_entries",
        "_plans",
        "_templates",
        "_retire_plans",
    )

    def __init__(
        self,
        pcs: Tuple[int, ...],
        words: Tuple[int, ...],
        statics: Tuple[Tuple[Tuple[int, int], ...], ...],
        dyn_entries: Tuple[Tuple[Tuple[int, int], ...], ...],
        uniq_prefix: Tuple[int, ...],
    ) -> None:
        self.length = len(pcs)
        self.pcs = pcs
        self.words = words
        self._statics = statics
        self._dyn_entries = dyn_entries
        #: uniq_prefix[count] = number of distinct dynamic values the
        #: block streams for its first ``count`` retired instructions.
        self.uniq_prefix = uniq_prefix
        self._plans: Dict[int, Tuple] = {}
        self._templates: Dict[int, Tuple] = {}
        self._retire_plans: Dict[int, np.ndarray] = {}
        self.run_recording = None  # assigned by _generate
        self.run_fast = None

    def flush_plan(self, count: int):
        """Scatter plan for the first ``count`` retired instructions.

        Returns ``(static_offsets, static_values, dyn_cells, gather,
        n_uniq)``: offsets/cells index the event log's flat event-major
        buffer relative to the instance's first event (event ``i``
        occupies flat cells ``[8 * i, 8 * i + 8)``).  ``gather`` maps
        each dynamic cell to its position in the streamed value slice
        (``None`` when that mapping is the identity), and ``n_uniq`` is
        the number of streamed values consumed.
        """
        plan = self._plans.get(count)
        if plan is None:
            static_off: List[int] = []
            static_vals: List[int] = []
            cells: List[int] = []
            gather: List[int] = []
            for i in range(count):
                base = 8 * i
                for row, value in self._statics[i]:
                    static_off.append(base + row)
                    static_vals.append(value)
                for row, uidx in self._dyn_entries[i]:
                    cells.append(base + row)
                    gather.append(uidx)
            n_uniq = self.uniq_prefix[count]
            identity = n_uniq == len(gather) and gather == list(range(n_uniq))
            plan = (
                np.asarray(static_off, dtype=np.intp),
                np.asarray(static_vals, dtype=np.int64),
                np.asarray(cells, dtype=np.intp),
                None if identity else np.asarray(gather, dtype=np.intp),
                n_uniq,
            )
            self._plans[count] = plan
        return plan

    def retire_plan(self, count: int) -> np.ndarray:
        """Static retire columns for the first ``count`` retirements.

        The ``(5, count)`` matrix of ``(rs1_addr, rs2_addr, rd_addr,
        mem_rmask, mem_wmask)`` — the retire-record fields fixed at
        translation time — that :func:`repro.riscv.retire
        .retires_from_events` pairs with the block's recorded event
        rows.  Cached per prefix length like :meth:`flush_plan`.
        """
        plan = self._retire_plans.get(count)
        if plan is None:
            plan = plan_columns(np.asarray(self.words[:count], dtype=np.int64))
            self._retire_plans[count] = plan
        return plan

    def flush_template(self, count: int):
        """Bulk-write recipe for the first ``count`` retired instructions.

        Returns ``(template, dyn_cells, gather, n_uniq)``: ``template``
        is the ``(count * 8,)`` int64 slab with every static field
        pre-filled (zeros elsewhere), so the event log materialises a
        block instance with one contiguous copy plus one fancy-index
        scatter of the streamed dynamic values.
        """
        template = self._templates.get(count)
        if template is None:
            static_off, static_vals, cells, gather, n_uniq = self.flush_plan(count)
            slab = np.zeros(count * 8, dtype=np.int64)
            slab[static_off] = static_vals
            template = (slab, cells, gather, n_uniq)
            self._templates[count] = template
        return template

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TranslatedBlock(pc={self.pcs[0]:#x}, length={self.length})"


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
def _is_const(expr: str) -> bool:
    return expr.lstrip("-").isdigit()


def _to_signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


class _BlockSource:
    """Accumulates the generated source of both engine variants."""

    def __init__(self) -> None:
        self.rec: List[str] = []
        self.fast: List[str] = []
        self.statics: List[List[Tuple[int, int]]] = []
        self.dyn_entries: List[List[Tuple[int, int]]] = []
        self.uniq_names: List[str] = []
        self._name_uidx: Dict[str, int] = {}
        self.uniq_counts: List[int] = []  # per completed instruction
        self.cycles: List[int] = []
        # Local value propagation: register index -> local variable name
        # (str) or translation-time constant (int) holding its value.
        self.reg_local: Dict[int, Union[str, int]] = {}

    def emit(self, line: str, rec: bool = True, fast: bool = True) -> None:
        if rec:
            self.rec.append(line)
        if fast:
            self.fast.append(line)

    def begin_instruction(self, word: int, pc: int, op_class: int) -> None:
        statics = [(_ROW_WORD, word)]
        if pc:
            statics.append((_ROW_PC, pc))
        if op_class:
            statics.append((_ROW_OP, op_class))
        self.statics.append(statics)
        self.dyn_entries.append([])

    def end_instruction(self) -> None:
        self.uniq_counts.append(len(self.uniq_names))

    def static(self, row: int, value: int) -> None:
        if value:  # the log's buffer is zeroed, so zeros need no write
            self.statics[-1].append((row, value))

    def dyn(self, row: int, name: str) -> None:
        uidx = self._name_uidx.get(name)
        if uidx is None:
            uidx = len(self.uniq_names)
            self.uniq_names.append(name)
            self._name_uidx[name] = uidx
        self.dyn_entries[-1].append((row, uidx))

    def cycle_prefix(self, count: int) -> int:
        return sum(self.cycles[:count])


def _operand(src: _BlockSource, i: int, which: str, reg_index: int, row: int) -> str:
    """Bind an operand: block-local alias, constant, or a fresh read."""
    if reg_index == 0:
        return "0"
    known = src.reg_local.get(reg_index)
    if known is None:
        name = f"{which}{i}"
        src.emit(f"    {name} = regs[{reg_index}]")
        src.reg_local[reg_index] = name
        src.dyn(row, name)
        return name
    if isinstance(known, int):
        src.static(row, known)
        return str(known)
    src.dyn(row, known)
    return known


def _signed_expr(src: _BlockSource, i: int, which: str, operand: str) -> str:
    """Sign-convert ``operand``; constants fold at translation time."""
    if _is_const(operand):
        return str(_to_signed(int(operand)))
    name = f"s{which}{i}"
    src.emit(
        f"    {name} = {operand} - 4294967296 if {operand} & 2147483648 else {operand}"
    )
    return name


def _old_rd(src: _BlockSource, i: int, rd: int) -> None:
    if rd == 0:
        return
    known = src.reg_local.get(rd)
    if known is None:
        src.emit(f"    o{i} = regs[{rd}]", fast=False)
        src.dyn(_ROW_OLD, f"o{i}")
    elif isinstance(known, int):
        src.static(_ROW_OLD, known)
    else:
        src.dyn(_ROW_OLD, known)


def _write_result(src: _BlockSource, i: int, rd: int, result: Union[str, int]) -> None:
    """Record the result event field and commit the register write."""
    if isinstance(result, int):
        src.static(_ROW_RESULT, result)
    else:
        src.dyn(_ROW_RESULT, result)
    _old_rd(src, i, rd)
    if rd:
        src.emit(f"    regs[{rd}] = {result}")
        src.reg_local[rd] = result


def _commit_lines(
    src: _BlockSource,
    count: int,
    pc: int,
    indent: str,
    early_return: bool,
    uniq_count: int,
    cycles: Optional[int] = None,
) -> List[Tuple[str, bool]]:
    """Lines committing the first ``count`` retired instructions.

    Returns (line, rec_only) pairs; ``early_return`` distinguishes a
    side exit (instruction ``count - 1`` retired, resume at ``pc``) from
    a fault unwind (instruction ``count`` did not retire, ``raise``
    follows).  ``cycles`` overrides the static prefix sum when the exit
    path's last instruction costs differently than the straight-line
    one (superblock branch side exits).
    """
    lines: List[Tuple[str, bool]] = []
    names = src.uniq_names[:uniq_count]
    if names:
        lines.append((f"{indent}ex(({', '.join(names)},))", True))
    if count or early_return:
        lines.append((f"{indent}mb((B, {count}))", True))
    lines.append((f"{indent}cpu.pc = {pc}", False))
    if cycles is None:
        cycles = src.cycle_prefix(count)
    if cycles:
        lines.append((f"{indent}cpu.cycle_count += {cycles}", False))
    if count:
        lines.append((f"{indent}cpu.instruction_count += {count}", False))
    if early_return:
        lines.append((f"{indent}return {count}", False))
    else:
        lines.append((f"{indent}raise", False))
    return lines


def _emit_commit(src, count, pc, indent, early_return, uniq_count, cycles=None):
    for line, rec_only in _commit_lines(
        src, count, pc, indent, early_return, uniq_count, cycles
    ):
        src.emit(line, fast=not rec_only)


def _emit_memory_try(src: _BlockSource, i: int, pc: int, call: str) -> None:
    """Wrap a memory access so a fault commits the retired prefix."""
    uniq_count = src.uniq_counts[i - 1] if i else 0
    src.emit("    try:")
    src.emit(f"        {call}")
    src.emit("    except SimulationError:")
    _emit_commit(src, i, pc, "        ", False, uniq_count)


def _fold_or_emit(src: _BlockSource, i: int, expr: str) -> Union[str, int]:
    """Evaluate an all-literal expression now, else bind it to a local."""
    stripped = expr.replace(" ", "")
    if all(c in "0123456789+-*&|^<>()" or c == "%" for c in stripped):
        # Every operand folded to a literal: the result is a constant.
        return eval(expr)  # noqa: S307 - literals produced by this module
    src.emit(f"    t{i} = {expr}")
    return f"t{i}"


def _address_operand(
    src: _BlockSource, i: int, a: str, imm: int, row: int
) -> Tuple[str, bool]:
    """The effective address; returns (expression, is_constant)."""
    if _is_const(a):
        value = (int(a) + imm) & _MASK32
        src.static(row, value)
        return str(value), True
    src.emit(f"    d{i} = ({a} + {imm}) & 4294967295")
    src.dyn(row, f"d{i}")
    return f"d{i}", False


def _emit_instruction(
    src: _BlockSource, i: int, ins, pc: int, continuation: Optional[int] = None
) -> None:
    """Append one instruction's specialized handler to the block body.

    ``continuation`` is the next translated pc when the instruction is
    not the block's last one; for a conditional branch it names the
    direction the superblock walk predicted (and followed), turning the
    other direction into a side-exit commit.
    """
    template = _HANDLER_TEMPLATES[ins.op_id]
    kind = template[0]
    rd, rs1, rs2, imm, word = ins.rd, ins.rs1, ins.rs2, ins.imm, ins.word

    if kind == "alu_rr" or kind == "alu_ri":
        if kind == "alu_rr":
            expr, op_class = template[1], template[2]
        else:
            expr, transform = template[1], template[2]
            op_class = cy.OP_ALU
        src.begin_instruction(word, pc, op_class)
        src.cycles.append(cy.CYCLES[op_class])
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        if kind == "alu_rr":
            b = _operand(src, i, "b", rs2, _ROW_RS2)
        else:
            b = str(imm & _MASK32 if transform == "mask" else imm)
        sa = _signed_expr(src, i, "a", a) if "{sa}" in expr else "0"
        sb = _signed_expr(src, i, "b", b) if "{sb}" in expr else "0"
        result = _fold_or_emit(src, i, expr.format(a=a, b=b, sa=sa, sb=sb))
        _write_result(src, i, rd, result)
        return

    if kind == "divrem":
        mnemonic = template[1]
        src.begin_instruction(word, pc, cy.OP_DIV)
        src.cycles.append(cy.CYCLES[cy.OP_DIV])
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        b = _operand(src, i, "b", rs2, _ROW_RS2)
        if mnemonic == "divu":
            src.emit(
                f"    t{i} = 4294967295 if {b} == 0 else ({a} // {b}) & 4294967295"
            )
        elif mnemonic == "remu":
            src.emit(f"    t{i} = {a} if {b} == 0 else ({a} % {b}) & 4294967295")
        else:
            sa = _signed_expr(src, i, "a", a)
            sb = _signed_expr(src, i, "b", b)
            if mnemonic == "div":
                src.emit(f"    if {sb} == 0:")
                src.emit(f"        t{i} = 4294967295")
                src.emit(f"    elif {sa} == -2147483648 and {sb} == -1:")
                src.emit(f"        t{i} = 2147483648")
                src.emit("    else:")
                src.emit(f"        t{i} = abs({sa}) // abs({sb})")
                src.emit(f"        if ({sa} < 0) != ({sb} < 0):")
                src.emit(f"            t{i} = -t{i}")
                src.emit(f"        t{i} = t{i} & 4294967295")
            else:  # rem
                src.emit(f"    if {sb} == 0:")
                src.emit(f"        t{i} = {a}")
                src.emit(f"    elif {sa} == -2147483648 and {sb} == -1:")
                src.emit(f"        t{i} = 0")
                src.emit("    else:")
                src.emit(f"        t{i} = abs({sa}) % abs({sb})")
                src.emit(f"        if {sa} < 0:")
                src.emit(f"            t{i} = -t{i}")
                src.emit(f"        t{i} = t{i} & 4294967295")
        _write_result(src, i, rd, f"t{i}")
        return

    if kind == "load":
        method, sign = template[1], template[2]
        src.begin_instruction(word, pc, cy.OP_LOAD)
        src.cycles.append(cy.CYCLES[cy.OP_LOAD])
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        address, _ = _address_operand(src, i, a, imm, _ROW_ADDR)
        target = f"q{i}" if sign else f"t{i}"
        _emit_memory_try(src, i, pc, f"{target} = mem.{method}({address})")
        if sign:
            bit, span = sign
            src.emit(
                f"    t{i} = (q{i} - {span} if q{i} & {bit} else q{i}) & 4294967295"
            )
        _write_result(src, i, rd, f"t{i}")
        return

    if kind == "store":
        method, result_mask = template[1], template[2]
        src.begin_instruction(word, pc, cy.OP_STORE)
        src.cycles.append(cy.CYCLES[cy.OP_STORE])
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        b = _operand(src, i, "b", rs2, _ROW_RS2)
        address, addr_const = _address_operand(src, i, a, imm, _ROW_ADDR)
        _emit_memory_try(src, i, pc, f"mem.{method}({address}, {b})")
        if _is_const(b):
            masked = int(b) if result_mask is None else int(b) & result_mask
            src.static(_ROW_RESULT, masked)
        elif result_mask is None:
            src.dyn(_ROW_RESULT, b)
        else:
            src.emit(f"    t{i} = {b} & {result_mask}")
            src.dyn(_ROW_RESULT, f"t{i}")
        # Self-modifying-code guard: a store that hits translated code
        # retires, then ends the block so execution resumes on fresh
        # translations (mirrors the word-mismatch check in the decoded
        # cache of the reference engine).
        if addr_const:
            word_address = str(int(address) & 0xFFFFFFFC)
        elif method == "store_word":
            word_address = address
        else:
            word_address = f"({address} & 4294967292)"
        src.emit(f"    if {word_address} in cpu._code_words:")
        src.emit("        cpu._invalidate_blocks()")
        _emit_commit(src, i + 1, pc + 4, "        ", True, len(src.uniq_names))
        return

    if kind == "branch":
        cond, need_sa, need_sb = template[1], template[2], template[3]
        src.begin_instruction(word, pc, 0)  # op class is dynamic
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        b = _operand(src, i, "b", rs2, _ROW_RS2)
        sa = _signed_expr(src, i, "a", a) if need_sa else "0"
        sb = _signed_expr(src, i, "b", b) if need_sb else "0"
        base = src.cycle_prefix(i)
        taken = (pc + imm) & _MASK32
        if continuation is None:
            # Block terminator: both directions leave the block.
            src.cycles.append(0)  # accounted in the taken/not-taken arms
            src.emit(f"    if {cond.format(a=a, b=b, sa=sa, sb=sb)}:")
            src.emit(f"        npc = {taken}")
            src.emit(f"        c{i} = {cy.OP_BRANCH_TAKEN}", fast=False)
            src.emit(f"        cyc = {base + cy.CYCLES[cy.OP_BRANCH_TAKEN]}")
            src.emit("    else:")
            src.emit(f"        npc = {pc + 4}")
            src.emit(f"        c{i} = {cy.OP_BRANCH_NOT_TAKEN}", fast=False)
            src.emit(f"        cyc = {base + cy.CYCLES[cy.OP_BRANCH_NOT_TAKEN]}")
            src.dyn(_ROW_OP, f"c{i}")
            src.dyn(_ROW_RESULT, "npc")
            return
        # Superblock interior: the walk followed the predicted
        # direction (``continuation``); the other direction becomes a
        # side-exit commit, so the straight line keeps flowing.
        follow_taken = continuation == taken
        if follow_taken:
            exit_cond = _BRANCH_INV[ins.mnemonic]
            exit_class, exit_pc = cy.OP_BRANCH_NOT_TAKEN, pc + 4
            cont_class = cy.OP_BRANCH_TAKEN
        else:
            exit_cond = cond
            exit_class, exit_pc = cy.OP_BRANCH_TAKEN, taken
            cont_class = cy.OP_BRANCH_NOT_TAKEN
        src.dyn(_ROW_OP, f"c{i}")
        src.dyn(_ROW_RESULT, f"r{i}")
        src.emit(f"    if {exit_cond.format(a=a, b=b, sa=sa, sb=sb)}:")
        src.emit(f"        c{i} = {exit_class}", fast=False)
        src.emit(f"        r{i} = {exit_pc}", fast=False)
        _emit_commit(
            src,
            i + 1,
            exit_pc,
            "        ",
            True,
            len(src.uniq_names),
            cycles=base + cy.CYCLES[exit_class],
        )
        src.emit(f"    c{i} = {cont_class}", fast=False)
        src.emit(f"    r{i} = {continuation}", fast=False)
        src.cycles.append(cy.CYCLES[cont_class])
        return

    if kind == "jal":
        src.begin_instruction(word, pc, cy.OP_JUMP)
        src.cycles.append(cy.CYCLES[cy.OP_JUMP])
        _write_result(src, i, rd, pc + 4)
        return

    if kind == "jalr":
        src.begin_instruction(word, pc, cy.OP_JUMP)
        src.cycles.append(cy.CYCLES[cy.OP_JUMP])
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        _write_result(src, i, rd, pc + 4)
        if _is_const(a):
            src.emit(f"    npc = {(int(a) + imm) & 0xFFFFFFFE}")
        else:
            src.emit(f"    npc = ({a} + {imm}) & 4294967294")
        return

    if kind == "lui" or kind == "auipc":
        src.begin_instruction(word, pc, 0)
        src.cycles.append(cy.CYCLES[cy.OP_ALU])
        if kind == "lui":
            result = (imm << 12) & _MASK32
        else:
            result = (pc + (imm << 12)) & _MASK32
        _write_result(src, i, rd, result)
        return

    if kind == "system":
        src.begin_instruction(word, pc, cy.OP_SYSTEM)
        src.cycles.append(cy.CYCLES[cy.OP_SYSTEM])
        src.emit("    cpu.halted = True")
        return

    raise SimulationError(
        f"no handler template for {ins.mnemonic}"
    )  # pragma: no cover - the table covers every decodable mnemonic


def _generate(pcs, words, instrs, fallthrough) -> TranslatedBlock:
    src = _BlockSource()
    src.emit("def _bb(cpu, regs, mem, ex, mb):", fast=False)
    src.emit("def _bb(cpu, regs, mem):", rec=False)
    last_index = len(instrs) - 1
    for i, (pc, ins) in enumerate(zip(pcs, instrs)):
        _emit_instruction(src, i, ins, pc, pcs[i + 1] if i < last_index else None)
        src.end_instruction()

    count = len(instrs)
    names = src.uniq_names
    if names:
        src.emit(f"    ex(({', '.join(names)},))", fast=False)
    src.emit(f"    mb((B, {count}))", fast=False)
    last = instrs[-1]
    if last.op_id in _BRANCH_IDS or last.mnemonic == "jalr":
        src.emit("    cpu.pc = npc")
    else:
        src.emit(f"    cpu.pc = {fallthrough}")
    if last.op_id in _BRANCH_IDS:
        src.emit("    cpu.cycle_count += cyc")
    else:
        src.emit(f"    cpu.cycle_count += {src.cycle_prefix(count)}")
    src.emit(f"    cpu.instruction_count += {count}")
    src.emit(f"    return {count}")

    uniq_prefix = (0,) + tuple(src.uniq_counts)
    block = TranslatedBlock(
        tuple(pcs),
        tuple(words),
        tuple(tuple(entry) for entry in src.statics),
        tuple(tuple(entry) for entry in src.dyn_entries),
        uniq_prefix,
    )
    namespace = {"SimulationError": SimulationError, "B": block}
    exec("\n".join(src.rec), namespace)  # noqa: S102 - template JIT
    block.run_recording = namespace.pop("_bb")
    exec("\n".join(src.fast), namespace)  # noqa: S102 - template JIT
    block.run_fast = namespace.pop("_bb")
    return block


# ----------------------------------------------------------------------
# Process-wide translation cache
# ----------------------------------------------------------------------
_TRANSLATION_CACHE: Dict[Tuple, TranslatedBlock] = {}
_TRANSLATION_CACHE_MAX = 8192

#: Lifetime counters over the translation cache (mirrors the shape of
#: ``repro.ring.ntt.ntt_cache_stats``: the raw dict plus size bounds).
_CACHE_STATS: Dict[str, float] = {
    "hits": 0,  # translate() calls answered from the cache
    "misses": 0,  # translate() calls that generated a new block
    "invalidations": 0,  # Cpu._invalidate_blocks calls (SMC)
    "compile_time_s": 0.0,  # cumulative _generate_checked seconds
}


def clear_translation_cache() -> None:
    """Drop every cached translation and zero the counters."""
    _TRANSLATION_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0.0 if key == "compile_time_s" else 0


def translation_cache_size() -> int:
    """Number of process-wide cached block translations."""
    return len(_TRANSLATION_CACHE)


def translation_cache_stats() -> Dict[str, float]:
    """Hit/miss/invalidation counters plus current cache occupancy."""
    stats = dict(_CACHE_STATS)
    stats["size"] = len(_TRANSLATION_CACHE)
    stats["max_size"] = _TRANSLATION_CACHE_MAX
    return stats


def note_invalidation() -> None:
    """Record one SMC block-cache invalidation (called by the Cpu)."""
    _CACHE_STATS["invalidations"] += 1


def translate(memory, start_pc: int) -> TranslatedBlock:
    """Decode and compile the basic block starting at ``start_pc``.

    The block-extent walk peeks only at each word's major opcode field
    (terminator? ``jal``?), so on a translation-cache hit no full
    ``decode()`` runs at all — the words themselves are the cache key.
    Full decoding happens once per distinct block in :func:`_generate`.

    Raises :class:`SimulationError` only when the *first* instruction
    fails to fetch or decode (matching the reference engine, which would
    fault on that same instruction with the machine state untouched); a
    later undecodable word simply ends the block, so the fault is raised
    when — and only if — execution actually reaches it.
    """
    pcs: List[int] = []
    words: List[int] = []
    pc = start_pc
    load_word = memory.load_word
    # Revisited pcs are allowed: a followed loop latch unrolls the loop
    # body (side exits keep every iteration's architectural state exact)
    # until the instruction cap ends the block.
    while len(words) < MAX_BLOCK_INSTRUCTIONS:
        try:
            word = load_word(pc)
        except SimulationError:
            if not words:
                raise
            break
        pcs.append(pc)
        words.append(word)
        opcode = word & 0x7F
        if opcode in _TERMINATOR_OPCODES:
            pc += 4  # the ebreak/ecall fallthrough; jalr sets npc
            break
        if opcode == 0x63:  # conditional branch: follow the predicted way
            imm = branch_offset(word)
            # Static prediction: backward branches are loop latches
            # (follow taken), forward branches skip ahead rarely
            # (follow fallthrough).
            cont = (pc + imm) & _MASK32 if imm < 0 else pc + 4
            if imm == 4 or cont % 4:
                pc += 4  # unfollowable: the branch terminates the block
                break
            pc = cont
            continue
        if opcode == 0x6F:  # jal: follow the jump
            pc = (pc + jal_offset(word)) & _MASK32
            if pc % 4:
                break  # misaligned target: the next fetch faults live
            continue
        pc += 4
    fallthrough = pc

    key = (start_pc, tuple(words))
    block = _TRANSLATION_CACHE.get(key)
    if block is None:
        _CACHE_STATS["misses"] += 1
        if len(_TRANSLATION_CACHE) >= _TRANSLATION_CACHE_MAX:
            _TRANSLATION_CACHE.clear()
        started = time.perf_counter()
        block = _generate_checked(pcs, words, fallthrough)
        _CACHE_STATS["compile_time_s"] += time.perf_counter() - started
        _TRANSLATION_CACHE[key] = block
    else:
        _CACHE_STATS["hits"] += 1
    return block


def _generate_checked(
    pcs: List[int], words: List[int], fallthrough: int
) -> TranslatedBlock:
    """Decode the walked words, truncating at the first illegal one.

    The opcode-peek walk cannot tell an illegal word from a legal
    non-terminator, so decode failures surface here: an illegal first
    word re-raises (the caller's fetch faults, exactly like the
    reference engine); a later one truncates the block so execution
    stops right before it and the fault fires on the next dispatch.
    """
    instrs: List = []
    for index, word in enumerate(words):
        try:
            instrs.append(decode(word))
        except SimulationError:
            if index == 0:
                raise
            return _generate(pcs[:index], words[:index], instrs, pcs[index])
    return _generate(pcs, words, instrs, fallthrough)
