"""The "device": a simulated PicoRV32 running the Gaussian sampler.

``GaussianSamplerDevice`` is the reproduction's stand-in for the
paper's SAKURA-G target.  One ``run`` is one execution of SEAL's
``set_poly_coeffs_normal`` for ``count`` coefficients; it yields both
the functional output (the sampled noise values / the RNS polynomial
buffer) and the microarchitectural events that the power model turns
into a trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.riscv.assembler import assemble
from repro.riscv.cpu import Cpu, EventLog
from repro.riscv.memory import Memory
from repro.riscv.programs.gaussian import gaussian_sampler_source

#: Fixed memory map: code | modulus table | output buffer.
_CODE_BASE = 0x0000
_MOD_TABLE = 0x4000
_OUT_BASE = 0x5000


@dataclass
class DeviceRun:
    """Result of one kernel execution."""

    values: List[int]  # the signed sampled coefficients (ground truth)
    residues: List[List[int]]  # output buffer content per limb
    events: EventLog  # columnar per-instruction log (sequence-compatible)
    cycle_count: int
    instruction_count: int


class GaussianSamplerDevice:
    """Executes the sampling kernel for a given modulus chain.

    Parameters
    ----------
    moduli:
        Values of the RNS coefficient moduli (``coeff_modulus`` in
        Fig. 2).
    max_deviation:
        The clipping bound (41 for the paper's configuration).
    """

    def __init__(
        self,
        moduli: Sequence[int],
        max_deviation: int = 41,
        program_source: Optional[str] = None,
    ) -> None:
        if not moduli:
            raise SimulationError("need at least one modulus")
        self.moduli = [int(m) for m in moduli]
        self.max_deviation = int(max_deviation)
        source = program_source if program_source is not None else gaussian_sampler_source()
        self.program = assemble(source, base_address=_CODE_BASE)
        if 4 * len(self.program.words) > _MOD_TABLE:
            raise SimulationError("kernel does not fit below the modulus table")
        # Warm translation state shared across runs: the program is
        # fixed for the device's lifetime, so compiled blocks carry over
        # between the fresh per-run Cpu instances (see
        # :meth:`Cpu.adopt_translations`).
        self._block_cache: dict = {}
        self._code_words: set = set()

    # -- pickling (translated blocks hold unpicklable generated code) --
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_block_cache"] = {}
        state["_code_words"] = set()
        return state

    # ------------------------------------------------------------------
    def run(
        self,
        seed: int,
        count: int,
        record_events: bool = True,
        max_instructions: Optional[int] = None,
        engine: str = "threaded",
    ) -> DeviceRun:
        """Sample ``count`` coefficients with PRNG seed ``seed``.

        ``record_events=False`` skips event collection for functional-only
        runs (about 2x faster).  ``engine`` selects the execution engine:
        ``"threaded"`` (the default block-translating engine, reusing
        this device's warm translation cache across runs) or
        ``"reference"`` (the scalar interpreter, bit-identical but much
        slower — useful for differential testing).
        """
        if count < 1:
            raise SimulationError("count must be >= 1")
        if engine not in ("threaded", "reference"):
            raise SimulationError(f"unknown engine {engine!r}")
        k = len(self.moduli)
        memory = Memory(size_bytes=_next_pow2(_OUT_BASE + 4 * k * count + 4096))
        cpu = Cpu(memory, record_events=record_events)
        cpu.load_program(self.program.words, _CODE_BASE)
        if engine == "threaded":
            cpu.adopt_translations(self._block_cache, self._code_words)
        for j, m in enumerate(self.moduli):
            memory.store_word(_MOD_TABLE + 4 * j, m)
        cpu.write_register(10, _OUT_BASE)  # a0
        cpu.write_register(11, count)  # a1
        cpu.write_register(12, k)  # a2
        cpu.write_register(13, _MOD_TABLE)  # a3
        cpu.write_register(14, seed & 0xFFFFFFFF)  # a4
        cpu.write_register(15, self.max_deviation)  # a5
        budget = max_instructions if max_instructions else 4000 * count + 10_000
        if engine == "threaded":
            cpu.run(max_instructions=budget)
        else:
            cpu.run_reference(max_instructions=budget)

        residues = [
            memory.read_words(_OUT_BASE + 4 * j * count, count) for j in range(k)
        ]
        q0 = self.moduli[0]
        values = [r - q0 if r > q0 // 2 else r for r in residues[0]]
        return DeviceRun(
            values=values,
            residues=residues,
            events=cpu.events,
            cycle_count=cpu.cycle_count,
            instruction_count=cpu.instruction_count,
        )

    def sample_one(self, seed: int, record_events: bool = True) -> DeviceRun:
        """Sample a single coefficient (the profiling workload)."""
        return self.run(seed, count=1, record_events=record_events)


def _next_pow2(value: int) -> int:
    return 1 << (value - 1).bit_length()
