"""The "device": a simulated PicoRV32 running the Gaussian sampler.

``GaussianSamplerDevice`` is the reproduction's stand-in for the
paper's SAKURA-G target.  One ``run`` is one execution of SEAL's
``set_poly_coeffs_normal`` for ``count`` coefficients; it yields both
the functional output (the sampled noise values / the RNS polynomial
buffer) and the microarchitectural events that the power model turns
into a trace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ParameterError, SimulationError
from repro.riscv.assembler import assemble
from repro.riscv.cpu import Cpu, EventLog
from repro.riscv.lanes import LaneEngine, LaneEventLog
from repro.riscv.memory import Memory
from repro.riscv.retire import RetireLog
from repro.riscv.programs.gaussian import gaussian_sampler_source

#: Fixed memory map: code | modulus table | output buffer.
_CODE_BASE = 0x0000
_MOD_TABLE = 0x4000
_OUT_BASE = 0x5000

#: Canonical engine names.  ``"interpreter"`` is accepted as a CLI-facing
#: alias for ``"reference"`` (the scalar seed interpreter).
ENGINES = ("threaded", "reference", "lanes", "compiled")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine selection to its canonical name.

    ``None`` falls back to the ``REVEAL_ENGINE`` environment variable,
    then to ``"threaded"``.  The CLI alias ``"interpreter"`` maps to
    ``"reference"``.  Anything else — including a bad ``REVEAL_ENGINE``
    value — raises :class:`~repro.errors.ParameterError` listing the
    valid options at parse time, instead of surfacing later as a
    ``KeyError`` deep in dispatch.
    """
    source = "engine"
    if engine is None:
        engine = os.environ.get("REVEAL_ENGINE", "").strip() or "threaded"
        source = "REVEAL_ENGINE"
    if engine == "interpreter":
        engine = "reference"
    if engine not in ENGINES:
        raise ParameterError(
            f"unknown {source} {engine!r} (choose from interpreter, "
            f"{', '.join(ENGINES)})"
        )
    return engine


def effective_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine and apply capability degradation.

    ``"compiled"`` requires a working C toolchain; when its probe fails
    the selection degrades to ``"threaded"`` (bit-identical, slower) —
    the same graceful-fallback contract as the compute-backend registry.
    The recorded reason is available from
    :func:`repro.riscv.compiled.probe_error`.  Every other engine
    resolves unchanged.
    """
    engine = resolve_engine(engine)
    if engine == "compiled":
        from repro.riscv.compiled import compiled_available

        if not compiled_available():
            return "threaded"
    return engine


@dataclass
class DeviceRun:
    """Result of one kernel execution."""

    values: List[int]  # the signed sampled coefficients (ground truth)
    residues: List[List[int]]  # output buffer content per limb
    events: EventLog  # columnar per-instruction log (sequence-compatible)
    cycle_count: int
    instruction_count: int
    #: RVFI-style retire records, only when the run asked for them
    #: (``record_retires=True``) — a conformance-testing aid, never part
    #: of the capture path.
    retires: Optional[RetireLog] = None


@dataclass
class LaneBatch:
    """Result of one lane-vectorized batch execution.

    ``runs[i]`` is the :class:`DeviceRun` for ``seeds[i]``.  ``events``
    is the shared :class:`LaneEventLog` arena for the whole batch (or
    ``None`` when event recording was off) — the batched capture path
    expands it wholesale via ``LeakageModel.expand_lanes`` instead of
    touching the per-run logs.
    """

    seeds: List[int]
    runs: List[DeviceRun]
    events: Optional[LaneEventLog]


class GaussianSamplerDevice:
    """Executes the sampling kernel for a given modulus chain.

    Parameters
    ----------
    moduli:
        Values of the RNS coefficient moduli (``coeff_modulus`` in
        Fig. 2).
    max_deviation:
        The clipping bound (41 for the paper's configuration).
    """

    def __init__(
        self,
        moduli: Sequence[int],
        max_deviation: int = 41,
        program_source: Optional[str] = None,
    ) -> None:
        if not moduli:
            raise SimulationError("need at least one modulus")
        self.moduli = [int(m) for m in moduli]
        self.max_deviation = int(max_deviation)
        source = program_source if program_source is not None else gaussian_sampler_source()
        self.program = assemble(source, base_address=_CODE_BASE)
        if 4 * len(self.program.words) > _MOD_TABLE:
            raise SimulationError("kernel does not fit below the modulus table")
        # Warm translation state shared across runs: the program is
        # fixed for the device's lifetime, so compiled blocks carry over
        # between the fresh per-run Cpu instances (see
        # :meth:`Cpu.adopt_translations`).
        self._block_cache: dict = {}
        self._code_words: set = set()
        # Compiled-engine warm state: one CompiledProgram (translated
        # blocks + the generated C extension module) reused across runs.
        # Lazy — built on the first engine="compiled" run.
        self._compiled_program = None
        # Lane-engine state, also shared across runs: one immutable
        # memory image and one compiled-block dict per memory size
        # (the image bakes in the modulus table; the generated block
        # code bakes in size-derived bounds checks).
        self._lane_images: Dict[int, np.ndarray] = {}
        self._lane_block_cache: Dict[int, dict] = {}
        # Most recent retire-recording run's log(s), kept for
        # interactive inspection (None unless a run asked for retires).
        self.last_retires: Optional[List[RetireLog]] = None

    # -- pickling (translated blocks hold unpicklable generated code; the
    # caches and any retained retire logs are per-process warm state) --
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_block_cache"] = {}
        state["_code_words"] = set()
        state["_compiled_program"] = None
        state["_lane_images"] = {}
        state["_lane_block_cache"] = {}
        state["last_retires"] = None
        return state

    # ------------------------------------------------------------------
    def run(
        self,
        seed: int,
        count: int,
        record_events: bool = True,
        max_instructions: Optional[int] = None,
        engine: Optional[str] = None,
        record_retires: bool = False,
    ) -> DeviceRun:
        """Sample ``count`` coefficients with PRNG seed ``seed``.

        ``record_events=False`` skips event collection for functional-only
        runs (about 2x faster).  ``engine`` selects the execution engine:
        ``"threaded"`` (the default block-translating engine, reusing
        this device's warm translation cache across runs),
        ``"compiled"`` (the same translation units lowered to generated
        C via cffi — the fastest engine where a toolchain exists, and a
        silent bit-identical fall-back to threaded where none does),
        ``"reference"`` (the scalar interpreter, bit-identical but much
        slower — useful for differential testing) or ``"lanes"`` (the
        lane-vectorized engine, single-lane here; see :meth:`run_lanes`
        for actual batching).  ``None`` defers to the ``REVEAL_ENGINE``
        environment variable, then to ``"threaded"``.
        """
        if count < 1:
            raise SimulationError("count must be >= 1")
        engine = effective_engine(engine)
        if engine == "lanes":
            return self.run_lanes(
                [seed],
                count,
                record_events=record_events,
                max_instructions=max_instructions,
                record_retires=record_retires,
            ).runs[0]
        k = len(self.moduli)
        memory = Memory(size_bytes=_next_pow2(_OUT_BASE + 4 * k * count + 4096))
        cpu = Cpu(memory, record_events=record_events, record_retires=record_retires)
        cpu.load_program(self.program.words, _CODE_BASE)
        if engine == "threaded":
            cpu.adopt_translations(self._block_cache, self._code_words)
        for j, m in enumerate(self.moduli):
            memory.store_word(_MOD_TABLE + 4 * j, m)
        cpu.write_register(10, _OUT_BASE)  # a0
        cpu.write_register(11, count)  # a1
        cpu.write_register(12, k)  # a2
        cpu.write_register(13, _MOD_TABLE)  # a3
        cpu.write_register(14, seed & 0xFFFFFFFF)  # a4
        cpu.write_register(15, self.max_deviation)  # a5
        budget = max_instructions if max_instructions else 4000 * count + 10_000
        if engine == "threaded":
            cpu.run(max_instructions=budget)
        elif engine == "compiled":
            from repro.riscv.compiled import CompiledProgram, run_compiled

            if self._compiled_program is None:
                self._compiled_program = CompiledProgram()
            run_compiled(
                cpu,
                max_instructions=budget,
                program=self._compiled_program,
            )
        else:
            cpu.run_reference(max_instructions=budget)

        residues = [
            memory.read_words(_OUT_BASE + 4 * j * count, count) for j in range(k)
        ]
        q0 = self.moduli[0]
        values = [r - q0 if r > q0 // 2 else r for r in residues[0]]
        retires = cpu.retires if record_retires else None
        if record_retires:
            self.last_retires = [retires]
        return DeviceRun(
            values=values,
            residues=residues,
            events=cpu.events,
            cycle_count=cpu.cycle_count,
            instruction_count=cpu.instruction_count,
            retires=retires,
        )

    def sample_one(self, seed: int, record_events: bool = True) -> DeviceRun:
        """Sample a single coefficient (the profiling workload)."""
        return self.run(seed, count=1, record_events=record_events)

    # ------------------------------------------------------------------
    def _lane_image(self, size: int) -> np.ndarray:
        """The shared initial memory image (code + modulus table)."""
        image = self._lane_images.get(size)
        if image is None:
            image = np.zeros(size, dtype=np.uint8)
            words = np.asarray(self.program.words, dtype=np.uint32)
            image[_CODE_BASE : _CODE_BASE + 4 * len(words)] = words.view(np.uint8)
            table = np.asarray(self.moduli, dtype=np.uint32)
            image[_MOD_TABLE : _MOD_TABLE + 4 * len(table)] = table.view(np.uint8)
            image.setflags(write=False)
            self._lane_images[size] = image
        return image

    def run_lanes(
        self,
        seeds: Sequence[int],
        count: int,
        record_events: bool = True,
        max_instructions: Optional[int] = None,
        events_per_lane: bool = True,
        record_retires: bool = False,
    ) -> LaneBatch:
        """Sample ``count`` coefficients for every seed in one batch.

        All seeds execute in lock-step on a :class:`LaneEngine` (one
        lane per seed); per-lane results are bit-identical to
        :meth:`run`.  ``events_per_lane=False`` leaves each
        ``DeviceRun.events`` empty and hands back only the shared
        arena, still in deferred-record form — the fused capture path
        (``LeakageModel.expand_arena``) consumes the dispatch records
        directly, so the row-major event matrix is never materialised
        unless a consumer explicitly asks for per-lane logs.
        """
        if count < 1:
            raise SimulationError("count must be >= 1")
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise SimulationError("need at least one seed")
        k = len(self.moduli)
        size = _next_pow2(_OUT_BASE + 4 * k * count + 4096)
        engine = LaneEngine(
            self._lane_image(size),
            lanes=len(seeds),
            record_events=record_events,
            record_retires=record_retires,
            block_cache=self._lane_block_cache.setdefault(size, {}),
        )
        engine.write_register(10, _OUT_BASE)  # a0
        engine.write_register(11, count)  # a1
        engine.write_register(12, k)  # a2
        engine.write_register(13, _MOD_TABLE)  # a3
        engine.write_register(14, [s & 0xFFFFFFFF for s in seeds])  # a4
        engine.write_register(15, self.max_deviation)  # a5
        budget = max_instructions if max_instructions else 4000 * count + 10_000
        engine.run(max_instructions=budget)
        for lane, error in enumerate(engine.errors):
            if error is not None:
                raise SimulationError(f"lane {lane} (seed {seeds[lane]}): {error}")

        out = _OUT_BASE >> 2
        m32 = engine.memory.view(np.uint32)
        q0 = self.moduli[0]
        runs: List[DeviceRun] = []
        for lane in range(len(seeds)):
            residues = [
                m32[lane, out + j * count : out + (j + 1) * count].tolist()
                for j in range(k)
            ]
            values = [r - q0 if r > q0 // 2 else r for r in residues[0]]
            if record_events and events_per_lane:
                events = engine.events.lane_log(lane)
            else:
                events = EventLog(capacity=1)
            runs.append(
                DeviceRun(
                    values=values,
                    residues=residues,
                    events=events,
                    cycle_count=int(engine.cycle_counts[lane]),
                    instruction_count=int(engine.instruction_counts[lane]),
                    retires=engine.retire_log(lane) if record_retires else None,
                )
            )
        if record_retires:
            self.last_retires = [run.retires for run in runs]
        return LaneBatch(seeds=seeds, runs=runs, events=engine.events)


def _next_pow2(value: int) -> int:
    return 1 << (value - 1).bit_length()
