"""Lane-vectorized RV32IM engine: L independent traces in lock-step.

The campaign workload is embarrassingly batch-shaped — hundreds of
thousands of runs of the *same* Gaussian-sampler kernel differing only
in the RNG seed register — yet the threaded engine still retires one
instruction stream at a time.  :class:`LaneEngine` executes ``L``
independent copies of a program the way a GPU warp does: architectural
state lives in ndarrays (``(32, L)`` register file, ``(L, size)``
memory, ``(L,)`` pc/cycle/instruction vectors), and every dispatch runs
one basic block for the whole group of lanes that sit at the same pc.

Scheduling and reconvergence
    Each iteration picks the *minimum* pc among live lanes and
    dispatches the block starting there to every lane parked at that
    pc.  Lanes that diverge at a conditional branch simply end up at
    different pcs; because the scheduler always serves the smallest pc
    first, lanes that fall behind (rejection-loop retries, the
    not-taken side of a forward skip) catch up before the others
    advance, and the short sampler kernel reconverges at the block
    boundaries within a handful of dispatches.

Blocks and bit-exactness
    Blocks here are plain basic blocks (``jal`` is followed;
    conditional branches, ``jalr`` and ``ebreak``/``ecall`` terminate)
    decoded from an immutable snapshot of the program image and
    compiled — exactly like :mod:`repro.riscv.threaded` — into exec'd
    Python over numpy row vectors, with block-local constant folding
    and deferred register writeback.  Anything the straight-line vector
    code cannot express exactly (memory faults, instruction-budget
    exhaustion mid-block, self-modified code) falls back to the scalar
    :meth:`repro.riscv.cpu.Cpu.step_reference` interpreter for the
    affected lanes, so per-lane results — registers, pc, cycle and
    instruction counts, the event stream, and every error string — are
    bit-identical to ``Cpu.run``.  The ``cpu.run_lanes`` differential
    oracle in :mod:`repro.verify.oracles` enforces exactly that.

Event recording
    All lanes record into one shared :class:`LaneEventLog` arena.
    Recording is *deferred*: a vector dispatch appends only the block
    reference, the lane ids, the block-start cycle counters and the
    handful of dynamic value vectors the generated code already holds
    — no per-dispatch slab is built.  Consumers pick the cheapest
    materialisation: ``LeakageModel.expand_arena`` walks the raw
    records grouped by block and scatters leakage samples straight
    into a flat batch buffer (the fused capture path), while
    :meth:`LaneEventLog.columns`/:meth:`LaneEventLog.lane_rows`
    lazily build the classic lane-major ``(total, 8)`` row matrix
    (template broadcast + one column write per dynamic cell, then one
    write-pointer scatter per chunk) for code that wants per-lane
    event streams.  Either way a lane's events are bit-identical to
    what a scalar run would have recorded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.backends import get_kernel
from repro.errors import SimulationError
from repro.riscv import cycles as cy
from repro.riscv.cpu import Cpu, EventLog
from repro.riscv.isa import decode, jal_offset
from repro.riscv.memory import Memory
from repro.riscv.retire import RetireLog, is_budget_error, retires_from_events, trap_row
from repro.riscv.threaded import (
    MAX_BLOCK_INSTRUCTIONS,
    _ALU_RI,
    _ALU_RR,
    _BRANCH_CONDS,
    _HANDLER_TEMPLATES,
    _ROW_ADDR,
    _ROW_OLD,
    _ROW_OP,
    _ROW_PC,
    _ROW_RESULT,
    _ROW_RS1,
    _ROW_RS2,
    _ROW_WORD,
    _is_const,
    _to_signed,
)

_MASK32 = 0xFFFFFFFF
_FIELDS = 8


class _LaneFault(Exception):
    """Internal: a vector dispatch cannot retire the block exactly.

    Raised by generated block code *before* the offending lane mutates
    anything beyond the undo-logged stores; the dispatcher rolls the
    group's stores back and re-executes every lane through the scalar
    reference interpreter, which produces the exact per-lane behaviour
    (including the precise :class:`SimulationError` message).
    """


# ----------------------------------------------------------------------
# Vector arithmetic helpers used by generated block code
# ----------------------------------------------------------------------
def _v_mulhu(a, b):
    au = np.asarray(a, dtype=np.uint64)
    bu = np.asarray(b, dtype=np.uint64)
    return ((au * bu) >> np.uint64(32)).astype(np.int64)


def _v_div(sa, sb):
    safe = np.where(sb == 0, 1, sb)
    q = np.abs(sa) // np.abs(safe)
    q = np.where((sa < 0) != (safe < 0), -q, q)
    # INT_MIN / -1 needs no special case: |INT_MIN| // 1 is 2**31, and
    # the sign test keeps it positive, so the & already yields
    # 0x80000000 exactly as the reference interpreter does.
    return np.where(sb == 0, 4294967295, q) & 4294967295


def _v_divu(a, b):
    return np.where(b == 0, 4294967295, a // np.where(b == 0, 1, b))


def _v_rem(sa, sb):
    safe = np.where(sb == 0, 1, sb)
    r = np.abs(sa) % np.abs(safe)
    r = np.where(sa < 0, -r, r)
    # rem-by-zero returns rs1 unchanged: sa & MASK32 recovers it.
    return np.where(sb == 0, sa, r) & 4294967295


def _v_remu(a, b):
    return np.where(b == 0, a, a % np.where(b == 0, 1, b))


def _fold_divrem(mnemonic: str, a: int, b: int) -> int:
    """Translation-time div/rem folding, mirroring ``step_reference``."""
    if mnemonic == "divu":
        return _MASK32 if b == 0 else (a // b) & _MASK32
    if mnemonic == "remu":
        return a if b == 0 else (a % b) & _MASK32
    sa, sb = _to_signed(a), _to_signed(b)
    if mnemonic == "div":
        if sb == 0:
            return _MASK32
        if sa == -(1 << 31) and sb == -1:
            return sa & _MASK32
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return q & _MASK32
    if sb == 0:  # rem
        return a
    if sa == -(1 << 31) and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & _MASK32


# ----------------------------------------------------------------------
# Numpy result expressions (the scalar twins live in riscv.threaded and
# are reused verbatim for translation-time constant folding)
# ----------------------------------------------------------------------
_NP_ALU_RR = {
    "add": "({a} + {b}) & 4294967295",
    "sub": "({a} - {b}) & 4294967295",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "sll": "({a} << ({b} & 31)) & 4294967295",
    "srl": "{a} >> ({b} & 31)",
    "sra": "(({sa}) >> ({b} & 31)) & 4294967295",
    "slt": "(({sa}) < ({sb})) * _one",
    "sltu": "({a} < {b}) * _one",
    "mul": "({a} * {b}) & 4294967295",
    "mulh": "((({sa}) * ({sb})) >> 32) & 4294967295",
    "mulhsu": "((({sa}) * {b}) >> 32) & 4294967295",
    "mulhu": "_v_mulhu({a}, {b})",
}

_NP_ALU_RI = {
    "addi": "({a} + {b}) & 4294967295",
    "andi": "{a} & {b}",
    "ori": "{a} | {b}",
    "xori": "{a} ^ {b}",
    "slli": "({a} << {b}) & 4294967295",
    "srli": "{a} >> {b}",
    "srai": "(({sa}) >> {b}) & 4294967295",
    "slti": "(({sa}) < {b}) * _one",
    "sltiu": "({a} < {b}) * _one",
}

_NP_BRANCH = {
    "beq": "{a} == {b}",
    "bne": "{a} != {b}",
    "blt": "({sa}) < ({sb})",
    "bge": "({sa}) >= ({sb})",
    "bltu": "{a} < {b}",
    "bgeu": "{a} >= {b}",
}

_NP_DIVREM = {
    "div": "_v_div({sa}, {sb})",
    "divu": "_v_divu({a}, {b})",
    "rem": "_v_rem({sa}, {sb})",
    "remu": "_v_remu({a}, {b})",
}

#: (width, view name, element shift) per memory access method.
_ACCESS = {
    "load_word": (4, "m32", 2),
    "load_half": (2, "m16", 1),
    "load_byte": (1, "m8", 0),
    "store_word": (4, "m32", 2),
    "store_half": (2, "m16", 1),
    "store_byte": (1, "m8", 0),
}


class LaneBlock:
    """One compiled basic block for the lane engine.

    Besides the two exec'd entry points the block carries its event
    *shape*: the static template row (``template``), which flat cells
    are dynamic (``cells``) and which recorded value vector fills each
    (``gather`` into ``uniq_names``).  Deferred recording stores only
    those value vectors per dispatch; both the lane-major finalize and
    the fused leakage emitters (:mod:`repro.power.leakage`) rebuild
    full events from this shared metadata.
    """

    __slots__ = (
        "pcs", "words", "length", "bmin", "bmax", "run_recording", "run_fast",
        "template", "cells", "gather", "uniq_names", "last_word", "emitters",
    )

    def __init__(self, pcs: Tuple[int, ...], words: Tuple[int, ...]) -> None:
        self.pcs = pcs
        self.words = words
        self.length = len(pcs)
        # Conservative pc envelope for the self-modified-code guard: a
        # store whose word address lands inside it may alter this block.
        self.bmin = min(pcs)
        self.bmax = max(pcs)
        self.run_recording = None
        self.run_fast = None
        self.template: Optional[np.ndarray] = None
        self.cells: Tuple[int, ...] = ()
        self.gather: Tuple[int, ...] = ()
        self.uniq_names: Tuple[str, ...] = ()
        self.last_word = 0
        # Compiled leakage emitters, keyed by the LeakageModel weights
        # (populated lazily by repro.power.leakage.expand_arena).
        self.emitters: Dict[Tuple, object] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LaneBlock(pc={self.pcs[0]:#x}, length={self.length})"


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
class _LaneSource:
    """Accumulates generated source plus the block's event template."""

    def __init__(self) -> None:
        self.rec: List[str] = []
        self.fast: List[str] = []
        self.statics: List[Tuple[int, int]] = []  # (flat cell, value)
        self.cells: List[int] = []
        self.gather: List[int] = []
        self.uniq_names: List[str] = []
        self._name_uidx: Dict[str, int] = {}
        self.cycle_total = 0
        self.reg_local: Dict[int, Union[str, int]] = {}
        self.written: Dict[int, Union[str, int]] = {}
        self._signed: Dict[str, str] = {}
        self._base = 0  # current instruction's flat event offset

    def emit(self, line: str, rec: bool = True, fast: bool = True) -> None:
        if rec:
            self.rec.append(line)
        if fast:
            self.fast.append(line)

    def begin_instruction(self, index: int, word: int, pc: int, op_class: int) -> None:
        self._base = _FIELDS * index
        self.static(_ROW_WORD, word)
        self.static(_ROW_PC, pc)
        self.static(_ROW_OP, op_class)

    def static(self, row: int, value: int) -> None:
        if value:  # the template slab is zeroed, so zeros need no entry
            self.statics.append((self._base + row, value))

    def dyn(self, row: int, name: str) -> None:
        uidx = self._name_uidx.get(name)
        if uidx is None:
            uidx = len(self.uniq_names)
            self.uniq_names.append(name)
            self._name_uidx[name] = uidx
        self.cells.append(self._base + row)
        self.gather.append(uidx)


def _operand(src: _LaneSource, i: int, which: str, reg: int, row: int) -> str:
    """Bind an operand: block-local alias, constant, or a fresh gather."""
    if reg == 0:
        return "0"
    known = src.reg_local.get(reg)
    if known is None:
        name = f"{which}{i}"
        src.emit(f"    {name} = regs[{reg}][idx]")
        src.reg_local[reg] = name
        src.dyn(row, name)
        return name
    if isinstance(known, int):
        src.static(row, known)
        return str(known)
    src.dyn(row, known)
    return known


def _signed_expr(src: _LaneSource, i: int, which: str, operand: str) -> str:
    if _is_const(operand):
        return str(_to_signed(int(operand)))
    name = src._signed.get(operand)
    if name is None:
        name = f"s{which}{i}"
        src.emit(f"    {name} = ({operand} ^ 2147483648) - 2147483648")
        src._signed[operand] = name
    return name


def _old_rd(src: _LaneSource, i: int, rd: int) -> None:
    if rd == 0:
        return
    known = src.reg_local.get(rd)
    if known is None:
        src.emit(f"    o{i} = regs[{rd}][idx]", fast=False)
        src.dyn(_ROW_OLD, f"o{i}")
    elif isinstance(known, int):
        src.static(_ROW_OLD, known)
    else:
        src.dyn(_ROW_OLD, known)


def _write_result(src: _LaneSource, i: int, rd: int, result: Union[str, int]) -> None:
    if isinstance(result, int):
        src.static(_ROW_RESULT, result)
    else:
        src.dyn(_ROW_RESULT, result)
    _old_rd(src, i, rd)
    if rd:
        src.reg_local[rd] = result
        src.written[rd] = result


def _all_const(*operands: str) -> bool:
    return all(_is_const(op) for op in operands)


def _fold_scalar(expr: str):
    """Evaluate a threaded-engine scalar template over literal operands."""
    return eval(expr)  # noqa: S307 - literals produced by this module


def _address_operand(
    src: _LaneSource, i: int, a: str, imm: int, row: int
) -> Tuple[str, bool]:
    if _is_const(a):
        value = (int(a) + imm) & _MASK32
        src.static(row, value)
        return str(value), True
    name = f"d{i}"
    src.emit(f"    {name} = ({a} + {imm}) & 4294967295")
    src.dyn(row, name)
    return name, False


def _emit_guard(src: _LaneSource, terms: List[str]) -> None:
    if terms:
        src.emit(f"    if ({' | '.join(terms)}).any():")
        src.emit("        raise _LaneFault")


def _emit_lane_instruction(
    src: _LaneSource,
    i: int,
    ins,
    pc: int,
    terminal: bool,
    fallthrough: int,
    bmin: int,
    bmax: int,
    size: int,
) -> None:
    """Append one instruction's vector handler to the block body.

    ``terminal`` marks the block's last instruction; only a terminal
    one may be a branch/``jalr``/system instruction (the walk ends
    blocks there), and it owns the ``npc``/``cyc`` control outputs.
    """
    template = _HANDLER_TEMPLATES[ins.op_id]
    kind = template[0]
    rd, rs1, rs2, imm, word = ins.rd, ins.rs1, ins.rs2, ins.imm, ins.word

    if kind == "alu_rr" or kind == "alu_ri":
        if kind == "alu_rr":
            scalar_expr, op_class = template[1], template[2]
            np_expr = _NP_ALU_RR[ins.mnemonic]
        else:
            scalar_expr, transform = template[1], template[2]
            np_expr = _NP_ALU_RI[ins.mnemonic]
            op_class = cy.OP_ALU
        src.begin_instruction(i, word, pc, op_class)
        src.cycle_total += cy.CYCLES[op_class]
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        if kind == "alu_rr":
            b = _operand(src, i, "b", rs2, _ROW_RS2)
        else:
            b = str(imm & _MASK32 if transform == "mask" else imm)
        if _all_const(a, b):
            sa = str(_to_signed(int(a)))
            sb = str(_to_signed(int(b)))
            result = _fold_scalar(scalar_expr.format(a=a, b=b, sa=sa, sb=sb))
            _write_result(src, i, rd, int(result))
            return
        sa = _signed_expr(src, i, "a", a) if "{sa}" in np_expr else "0"
        sb = _signed_expr(src, i, "b", b) if "{sb}" in np_expr else "0"
        src.emit(f"    t{i} = {np_expr.format(a=a, b=b, sa=sa, sb=sb)}")
        _write_result(src, i, rd, f"t{i}")
        return

    if kind == "divrem":
        mnemonic = template[1]
        src.begin_instruction(i, word, pc, cy.OP_DIV)
        src.cycle_total += cy.CYCLES[cy.OP_DIV]
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        b = _operand(src, i, "b", rs2, _ROW_RS2)
        if _all_const(a, b):
            _write_result(src, i, rd, _fold_divrem(mnemonic, int(a), int(b)))
            return
        np_expr = _NP_DIVREM[mnemonic]
        sa = _signed_expr(src, i, "a", a) if "{sa}" in np_expr else "0"
        sb = _signed_expr(src, i, "b", b) if "{sb}" in np_expr else "0"
        src.emit(f"    t{i} = {np_expr.format(a=a, b=b, sa=sa, sb=sb)}")
        _write_result(src, i, rd, f"t{i}")
        return

    if kind == "load":
        method, sign = template[1], template[2]
        width, view, shift = _ACCESS[method]
        src.begin_instruction(i, word, pc, cy.OP_LOAD)
        src.cycle_total += cy.CYCLES[cy.OP_LOAD]
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        address, addr_const = _address_operand(src, i, a, imm, _ROW_ADDR)
        if addr_const:
            value = int(address)
            if value > size - width or value % width:
                # A constant bad address faults in every lane; the
                # scalar redo raises the exact Memory._check message.
                src.emit("    raise _LaneFault")
                return
            element = str(value >> shift)
        else:
            terms = [f"({address} > {size - width})"]
            if width > 1:
                terms.append(f"({address} & {width - 1})")
            _emit_guard(src, terms)
            element = address if shift == 0 else f"e{i}"
            if shift:
                src.emit(f"    e{i} = {address} >> {shift}")
        if sign:
            bit, _span = sign
            src.emit(f"    q{i} = {view}[idx, {element}].astype(_i64)")
            src.emit(f"    t{i} = ((q{i} ^ {bit}) - {bit}) & 4294967295")
        else:
            src.emit(f"    t{i} = {view}[idx, {element}].astype(_i64)")
        _write_result(src, i, rd, f"t{i}")
        return

    if kind == "store":
        method, result_mask = template[1], template[2]
        width, view, shift = _ACCESS[method]
        src.begin_instruction(i, word, pc, cy.OP_STORE)
        src.cycle_total += cy.CYCLES[cy.OP_STORE]
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        b = _operand(src, i, "b", rs2, _ROW_RS2)
        address, addr_const = _address_operand(src, i, a, imm, _ROW_ADDR)
        if addr_const:
            value = int(address)
            word_address = value & 0xFFFFFFFC
            if value > size - width or value % width or bmin <= word_address <= bmax:
                # Bad address, or a store into this very block: let the
                # scalar path produce the exact fault / exact retire.
                src.emit("    raise _LaneFault")
                return
            element = str(value >> shift)
            note = str(word_address)
        else:
            if width == 4:
                word_address = address
            else:
                word_address = f"wa{i}"
                src.emit(f"    wa{i} = {address} & 4294967292")
            terms = [f"({address} > {size - width})"]
            if width > 1:
                terms.append(f"({address} & {width - 1})")
            # A store that lands inside the current block would make
            # the remaining pre-decoded instructions stale mid-flight.
            terms.append(f"(({word_address} >= {bmin}) & ({word_address} <= {bmax}))")
            _emit_guard(src, terms)
            element = address if shift == 0 else f"e{i}"
            if shift:
                src.emit(f"    e{i} = {address} >> {shift}")
            note = word_address
        src.emit(f"    u{i} = {view}[idx, {element}]")
        src.emit(f"    eng._undo.append(({view}, {element}, u{i}))")
        # A folded constant must be pre-masked to the view's width: a
        # Python int scalar is range-checked on assignment (ndarray
        # values cast-truncate, scalars raise OverflowError).
        stored = str(int(b) & ((1 << (8 * width)) - 1)) if _is_const(b) else b
        src.emit(f"    {view}[idx, {element}] = {stored}")
        src.emit(f"    eng._note({note})")
        if _is_const(b):
            masked = int(b) if result_mask is None else int(b) & result_mask
            src.static(_ROW_RESULT, masked)
        elif result_mask is None:
            src.dyn(_ROW_RESULT, b)
        else:
            src.emit(f"    t{i} = {b} & {result_mask}", fast=False)
            src.dyn(_ROW_RESULT, f"t{i}")
        return

    if kind == "branch":
        scalar_cond = template[1]
        src.begin_instruction(i, word, pc, 0)  # op class is dynamic
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        b = _operand(src, i, "b", rs2, _ROW_RS2)
        taken_pc = (pc + imm) & _MASK32
        base = src.cycle_total
        if _all_const(a, b):
            sa = str(_to_signed(int(a)))
            sb = str(_to_signed(int(b)))
            taken = bool(_fold_scalar(scalar_cond.format(a=a, b=b, sa=sa, sb=sb)))
            op_class = cy.OP_BRANCH_TAKEN if taken else cy.OP_BRANCH_NOT_TAKEN
            src.static(_ROW_OP, op_class)
            npc = taken_pc if taken else pc + 4
            src.static(_ROW_RESULT, npc)
            src.emit(f"    npc = {npc}")
            src.cycle_total = base + cy.CYCLES[op_class]
            return
        np_cond = _NP_BRANCH[ins.mnemonic]
        sa = _signed_expr(src, i, "a", a) if "{sa}" in np_cond else "0"
        sb = _signed_expr(src, i, "b", b) if "{sb}" in np_cond else "0"
        src.emit(f"    k{i} = {np_cond.format(a=a, b=b, sa=sa, sb=sb)}")
        src.emit(f"    npc = _np.where(k{i}, {taken_pc}, {pc + 4})")
        src.emit(
            f"    cyc = _np.where(k{i}, {base + cy.CYCLES[cy.OP_BRANCH_TAKEN]},"
            f" {base + cy.CYCLES[cy.OP_BRANCH_NOT_TAKEN]})"
        )
        src.emit(
            f"    c{i} = _np.where(k{i}, {cy.OP_BRANCH_TAKEN},"
            f" {cy.OP_BRANCH_NOT_TAKEN})",
            fast=False,
        )
        src.dyn(_ROW_OP, f"c{i}")
        src.dyn(_ROW_RESULT, "npc")
        src.cycle_total = -1  # dynamic: the generated `cyc` carries it
        return

    if kind == "jal":
        src.begin_instruction(i, word, pc, cy.OP_JUMP)
        src.cycle_total += cy.CYCLES[cy.OP_JUMP]
        _write_result(src, i, rd, pc + 4)
        return

    if kind == "jalr":
        src.begin_instruction(i, word, pc, cy.OP_JUMP)
        src.cycle_total += cy.CYCLES[cy.OP_JUMP]
        a = _operand(src, i, "a", rs1, _ROW_RS1)
        _write_result(src, i, rd, pc + 4)
        if _is_const(a):
            src.emit(f"    npc = {(int(a) + imm) & 0xFFFFFFFE}")
        else:
            src.emit(f"    npc = ({a} + {imm}) & 4294967294")
        return

    if kind == "lui" or kind == "auipc":
        src.begin_instruction(i, word, pc, 0)
        src.cycle_total += cy.CYCLES[cy.OP_ALU]
        if kind == "lui":
            result = (imm << 12) & _MASK32
        else:
            result = (pc + (imm << 12)) & _MASK32
        _write_result(src, i, rd, result)
        return

    if kind == "system":
        src.begin_instruction(i, word, pc, cy.OP_SYSTEM)
        src.cycle_total += cy.CYCLES[cy.OP_SYSTEM]
        src.emit("    eng.halted[idx] = True")
        src.emit("    eng._alive[idx] = False")
        return

    raise SimulationError(
        f"no lane handler for {ins.mnemonic}"
    )  # pragma: no cover - the table covers every decodable mnemonic


def _wrap_self_loop(lines: List[str], cont_expr: str, length: int) -> List[str]:
    """Wrap a generated block body in a masked in-dispatch loop.

    The body (everything after the ``def`` line) re-executes over a
    shrinking active index set: lanes whose terminal branch re-enters
    the block's own start keep iterating, lanes that exit (or cannot
    retire another full block within budget) park with their committed
    pc.  Each iteration commits exactly like one scheduler dispatch —
    stores under the undo log, then events, writebacks, pc and counter
    updates — so a mid-iteration fault leaves precisely one unretired
    block execution for the scalar redo, and the observable per-lane
    state is bit-identical to dispatching the block once per iteration.
    """
    out = [lines[0], "    while True:", "        eng._undo.clear()"]
    out.extend("    " + line for line in lines[1:])
    out.extend(
        [
            f"        lk = {cont_expr}",
            "        if not lk.any(): return",
            f"        lk = lk & ((eng._budget - eng.instruction_counts[idx]) >= {length})",
            "        if not lk.any(): return",
            "        idx = idx[lk]",
        ]
    )
    return out


def _generate_lane(pcs, words, instrs, fallthrough: int, size: int) -> LaneBlock:
    block = LaneBlock(tuple(pcs), tuple(words))
    src = _LaneSource()
    src.emit("def _lb(eng, idx, regs, m8, m16, m32):")
    src.emit("    eng._cur_idx = idx")
    last = len(instrs) - 1
    terminator = instrs[last].mnemonic
    for i, (pc, ins) in enumerate(zip(pcs, instrs)):
        _emit_lane_instruction(
            src, i, ins, pc, i == last, fallthrough, block.bmin, block.bmax, size
        )

    count = len(instrs)
    # Event staging is deferred: hand the arena the block reference,
    # the block-start cycle counters (the counter update below has not
    # run yet) and the dynamic value vectors the body just computed.
    # Every vector is a fresh array (fancy-indexed gathers and
    # arithmetic results), so the later in-place register writebacks
    # cannot alias it; the slab materialisation this replaces happens
    # lazily — and only for consumers that ask for row-major events.
    names = src.uniq_names
    values = ", ".join(names) + ("," if names else "")
    src.emit(
        f"    eng.events.append_dyn(_BLK, idx, eng.cycle_counts[idx], ({values}))",
        fast=False,
    )

    # Deferred register writeback: a mid-block _LaneFault therefore
    # leaves the register file untouched for the scalar redo.
    for rd, value in src.written.items():
        src.emit(f"    regs[{rd}][idx] = {value}")

    if terminator in _NP_BRANCH or terminator == "jalr":
        src.emit("    eng.pcs[idx] = npc")
    else:
        src.emit(f"    eng.pcs[idx] = {fallthrough}")
    if src.cycle_total < 0:  # dynamic terminal branch
        src.emit("    eng.cycle_counts[idx] += cyc")
    elif src.cycle_total:
        src.emit(f"    eng.cycle_counts[idx] += {src.cycle_total}")
    src.emit(f"    eng.instruction_counts[idx] += {count}")

    # Self-loop blocks (a dynamic terminal branch whose taken target or
    # fall-through is the block's own start) iterate inside the
    # dispatch over the still-looping lane subset.  This is where
    # divergence concentrates — rejection sampling, normalisation and
    # Newton loops with per-lane trip counts — and handling it here
    # keeps the rest of the warp converged at the loop exit instead of
    # splintering the min-pc groups on every iteration.
    rec_lines, fast_lines = src.rec, src.fast
    if src.cycle_total < 0 and terminator in _NP_BRANCH:
        taken_pc = (pcs[last] + instrs[last].imm) & _MASK32
        cont_expr = None
        if taken_pc == pcs[0]:
            cont_expr = f"k{last}"
        elif fallthrough == pcs[0]:
            cont_expr = f"~k{last}"
        if cont_expr is not None:
            rec_lines = _wrap_self_loop(rec_lines, cont_expr, count)
            fast_lines = _wrap_self_loop(fast_lines, cont_expr, count)

    template = np.zeros(count * _FIELDS, dtype=np.int64)
    if src.statics:
        off, vals = zip(*src.statics)
        template[list(off)] = vals
    block.template = template
    block.cells = tuple(src.cells)
    block.gather = tuple(src.gather)
    block.uniq_names = tuple(src.uniq_names)
    block.last_word = int(block.words[count - 1])
    namespace = {
        "_np": np,
        "_i64": np.int64,
        "_one": np.int64(1),
        "_LaneFault": _LaneFault,
        "_v_mulhu": _v_mulhu,
        "_v_div": _v_div,
        "_v_divu": _v_divu,
        "_v_rem": _v_rem,
        "_v_remu": _v_remu,
        "_BLK": block,
    }
    exec("\n".join(rec_lines), namespace)  # noqa: S102 - template JIT
    block.run_recording = namespace.pop("_lb")
    exec("\n".join(fast_lines), namespace)  # noqa: S102 - template JIT
    block.run_fast = namespace.pop("_lb")
    return block


def _generate_checked_lane(pcs, words, fallthrough: int, size: int) -> LaneBlock:
    """Decode the walked words, truncating at the first illegal one."""
    instrs: List = []
    for index, word in enumerate(words):
        try:
            instrs.append(decode(word))
        except SimulationError:
            if index == 0:
                raise
            return _generate_lane(pcs[:index], words[:index], instrs, pcs[index], size)
    return _generate_lane(pcs, words, instrs, fallthrough, size)


# ----------------------------------------------------------------------
# Process-wide translation cache (keyed on the memory size too: the
# generated code embeds bounds-check limits derived from it)
# ----------------------------------------------------------------------
_LANE_CACHE: Dict[Tuple, LaneBlock] = {}
_LANE_CACHE_MAX = 4096


def lane_cache_size() -> int:
    return len(_LANE_CACHE)


def clear_lane_cache() -> None:
    _LANE_CACHE.clear()


def _image_word(image32: np.ndarray, size: int, address: int) -> int:
    """Fetch one word from the image with Memory._check's exact faults."""
    if address < 0 or address + 4 > size:
        raise SimulationError(
            f"memory access at {address:#x} (+4) outside [0, {size:#x})"
        )
    if address % 4:
        raise SimulationError(f"misaligned 4-byte access at {address:#x}")
    return int(image32[address >> 2])


def _static_entry_points(image32: np.ndarray, size: int) -> frozenset:
    """Static branch and ``jal`` targets in the boot image.

    These are the program's join points: a pc that some branch can
    reach is where subgroups that diverged at that branch physically
    reconverge.  :func:`_walk_image` stops a block just before one, so
    the lanes arriving by branch and the lanes arriving by fallthrough
    land on the *same* pc and the min-pc scheduler fuses them into one
    dispatch group again, instead of each subgroup dragging its own
    inlined copy of the joined tail forever (which is what splinters a
    warp inside loop diamonds).  Data words that happen to decode as
    branches only add harmless extra split points.
    """
    words = image32[: size >> 2].astype(np.int64)
    pcs = np.arange(0, size, 4, dtype=np.int64)
    opcode = words & 0x7F
    found = []
    rows = np.nonzero(opcode == 0x63)[0]  # conditional branches
    if rows.size:
        w = words[rows]
        imm = (
            ((w >> 31) & 0x1) << 12
            | ((w >> 25) & 0x3F) << 5
            | ((w >> 8) & 0xF) << 1
            | ((w >> 7) & 0x1) << 11
        )
        imm -= (imm & 0x1000) << 1
        found.append((pcs[rows] + imm) & _MASK32)
    rows = np.nonzero(opcode == 0x6F)[0]  # jal
    if rows.size:
        w = words[rows]
        imm = (
            ((w >> 31) & 0x1) << 20
            | ((w >> 21) & 0x3FF) << 1
            | ((w >> 20) & 0x1) << 11
            | ((w >> 12) & 0xFF) << 12
        )
        imm -= (imm & 0x100000) << 1
        found.append((pcs[rows] + imm) & _MASK32)
    if not found:
        return frozenset()
    return frozenset(int(t) for t in np.concatenate(found))


def _walk_image(image32: np.ndarray, size: int, start_pc: int, entries=frozenset()):
    """Basic-block extent walk over the immutable program image.

    Follows ``jal``; conditional branches, ``jalr`` and system
    instructions end the block (they are where lanes may diverge), as
    does the instruction cap or an unfetchable next word.  Sequential
    flow into a static branch target (``entries``) also ends the block
    so diverged subgroups reconverge there; ``jal`` still inlines its
    target, which is what lets a loop body whose back edge is an
    unconditional jump fuse into one self-loop block.
    """
    pcs: List[int] = []
    words: List[int] = []
    pc = start_pc
    while len(words) < MAX_BLOCK_INSTRUCTIONS:
        try:
            word = _image_word(image32, size, pc)
        except SimulationError:
            if not words:
                raise
            break
        pcs.append(pc)
        words.append(word)
        opcode = word & 0x7F
        if opcode in (0x63, 0x67, 0x73):  # branch / jalr / system
            pc += 4  # the system fallthrough; branch/jalr set npc
            break
        if opcode == 0x6F:  # jal: follow the jump
            pc = (pc + jal_offset(word)) & _MASK32
            if pc % 4:
                break  # misaligned target: the next fetch faults live
            continue
        pc += 4
        if pc != start_pc and pc in entries:
            break  # join point: stop so diverged groups merge here
    return pcs, words, pc


# ----------------------------------------------------------------------
# Lane-major event arena
# ----------------------------------------------------------------------
class LaneEventLog:
    """Shared event arena for all lanes of one :class:`LaneEngine` run.

    Recording appends *deferred* records in dispatch order: a vector
    dispatch stores ``(block, lane_ids, block-start cycles, previous
    fetched words, dynamic value vectors)`` and a scalar-fallback
    episode stores its finished ``(n, 8)`` rows — no slab is built at
    record time.  The arena also threads the per-lane previously-
    fetched-word chain (``prev``) through the records, because the
    instruction-bus Hamming distance couples consecutive events across
    dispatch boundaries within a lane.

    Consumers choose a materialisation:

    - :meth:`records` hands the raw deferred records to
      ``LeakageModel.expand_arena``, which never builds per-event rows
      at all (the fused capture path);
    - :meth:`columns`/:meth:`lane_rows`/:meth:`lane_log` lazily
      finalize the classic lane-major ``(total, 8)`` row matrix, each
      lane's events in execution order, bit-identical to what a scalar
      run would have recorded.
    """

    def __init__(self, lanes: int) -> None:
        self.lanes = lanes
        # ("dyn", block, ids, cyc0, prev, values) for vector dispatches,
        # ("rows", lane, rows, cyc0, prev) for scalar-fallback episodes,
        # ("chunk", ids, slab) for externally materialised appends.
        self._records: List[tuple] = []
        self._counts = np.zeros(lanes, dtype=np.int64)
        self._last_word = np.zeros(lanes, dtype=np.int64)
        self._rows: Optional[np.ndarray] = None
        self._starts: Optional[np.ndarray] = None

    def _check_open(self) -> None:
        if self._rows is not None:
            raise SimulationError("LaneEventLog is finalized; no further recording")

    def append_dyn(
        self,
        block: LaneBlock,
        lane_ids: np.ndarray,
        cycle_starts: np.ndarray,
        values: Tuple[np.ndarray, ...],
    ) -> None:
        """Record one vector dispatch of ``block`` (deferred).

        ``cycle_starts`` must be the per-lane cycle counters *before*
        the dispatch retires (they locate the block's samples inside
        each lane's trace); ``values`` holds one ``(g,)`` vector per
        ``block.uniq_names`` entry, in order.
        """
        self._check_open()
        prev = self._last_word[lane_ids]
        self._last_word[lane_ids] = block.last_word
        self._records.append(("dyn", block, lane_ids, cycle_starts, prev, values))
        self._counts[lane_ids] += block.length

    def append_rows(
        self, lane: int, rows: np.ndarray, cycle_start: int = 0
    ) -> None:
        """Record one lane's scalar-fallback events (already row-major)."""
        if rows.shape[0]:
            self._check_open()
            prev = int(self._last_word[lane])
            self._last_word[lane] = rows[-1, _ROW_WORD]
            self._records.append(("rows", lane, rows, int(cycle_start), prev))
            self._counts[lane] += rows.shape[0]

    def append_chunk(self, lane_ids: np.ndarray, slab: np.ndarray) -> None:
        """Record pre-materialised ``(g, n, 8)`` event rows per lane."""
        self._check_open()
        self._records.append(("chunk", lane_ids, slab))
        self._last_word[lane_ids] = slab[:, -1, _ROW_WORD]
        self._counts[lane_ids] += slab.shape[1]

    def records(self) -> List[tuple]:
        """The raw deferred records, in dispatch (execution) order."""
        return self._records

    def lane_counts(self) -> np.ndarray:
        return self._counts.copy()

    def _materialized_chunks(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Records as ``(lane_ids, (g, n, 8))`` slabs, dispatch order."""
        chunks: List[Tuple[np.ndarray, np.ndarray]] = []
        for rec in self._records:
            tag = rec[0]
            if tag == "dyn":
                _, block, ids, _cyc0, _prev, values = rec
                g = ids.shape[0]
                slab = np.empty((g, block.length * _FIELDS), dtype=np.int64)
                slab[:] = block.template
                for cell, uidx in zip(block.cells, block.gather):
                    slab[:, cell] = values[uidx]
                chunks.append((ids, slab.reshape(g, block.length, _FIELDS)))
            elif tag == "rows":
                _, lane, rows, _cyc0, _prev = rec
                chunks.append((np.asarray([lane], dtype=np.intp), rows[None, :, :]))
            else:
                chunks.append((rec[1], rec[2]))
        return chunks

    def _finalize(self) -> np.ndarray:
        if self._rows is None:
            starts = np.zeros(self.lanes + 1, dtype=np.int64)
            np.cumsum(self._counts, out=starts[1:])
            rows = np.empty((int(starts[-1]), _FIELDS), dtype=np.int64)
            chunks = self._materialized_chunks()
            if chunks:
                # One (chunk, lane) pair per slab row-run.  A pair's
                # destination is its lane's region start plus the total
                # length of that lane's earlier pairs; a stable sort by
                # lane turns that running total into a grouped
                # exclusive prefix sum, so the whole scatter needs no
                # per-chunk Python loop beyond the two concatenations.
                n_chunks = len(chunks)
                chunk_len = np.fromiter(
                    (slab.shape[1] for _, slab in chunks),
                    np.int64, n_chunks,
                )
                chunk_width = np.fromiter(
                    (ids.size for ids, _ in chunks), np.intp, n_chunks
                )
                pair_lane = np.concatenate([ids for ids, _ in chunks])
                pair_len = np.repeat(chunk_len, chunk_width)
                order = np.argsort(pair_lane, kind="stable")
                lane_sorted = pair_lane[order]
                run = np.cumsum(pair_len[order]) - pair_len[order]
                first = np.searchsorted(lane_sorted, np.arange(self.lanes))
                dest_sorted = (
                    starts[lane_sorted] + run - run[first[lane_sorted]]
                )
                pair_base = np.empty(pair_lane.size, dtype=np.int64)
                pair_base[order] = dest_sorted
                ends = np.cumsum(pair_len)
                offsets = np.arange(int(ends[-1]), dtype=np.int64)
                offsets -= np.repeat(ends - pair_len, pair_len)
                rows[np.repeat(pair_base, pair_len) + offsets] = (
                    np.concatenate(
                        [slab.reshape(-1, _FIELDS) for _, slab in chunks]
                    )
                )
            self._rows = rows
            self._starts = starts
        return self._rows

    def columns(self) -> np.ndarray:
        """The lane-major ``(8, total)`` field matrix (a view)."""
        return self._finalize().T

    def lane_rows(self, lane: int) -> np.ndarray:
        """One lane's ``(n, 8)`` event rows (a view into the arena)."""
        self._finalize()
        return self._rows[self._starts[lane] : self._starts[lane + 1]]

    def lane_log(self, lane: int) -> EventLog:
        """Materialise one lane's events as a standalone EventLog."""
        return EventLog.from_rows(self.lane_rows(lane))

    def __len__(self) -> int:
        return int(self._counts.sum())


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class LaneEngine:
    """Lock-step execution of ``lanes`` copies of one program image.

    Parameters
    ----------
    image:
        The shared initial memory contents (program + data), a uint8
        array whose length is the per-lane memory size.  It is
        snapshotted: translations always decode from this image, and
        the self-modified-code guard scalarises any lane whose live
        code may differ from it.
    lanes:
        Number of independent lanes.
    record_events:
        Record the shared :attr:`events` arena (the dominant cost).
    record_retires:
        Enable :meth:`retire_rows`/:meth:`retire_log` — per-lane
        RVFI-style retire records projected from the finalized event
        arena (see :mod:`repro.riscv.retire`).  Requires
        ``record_events``.
    block_cache:
        Optional persistent ``{pc: LaneBlock}`` dict shared across runs
        of the same image (the device keeps one per memory size).
    """

    def __init__(
        self,
        image: np.ndarray,
        lanes: int,
        record_events: bool = True,
        record_retires: bool = False,
        block_cache: Optional[Dict[int, LaneBlock]] = None,
    ) -> None:
        image = np.ascontiguousarray(np.asarray(image, dtype=np.uint8))
        if image.ndim != 1 or image.shape[0] % 4 or not image.shape[0]:
            raise SimulationError("lane image must be a positive multiple of 4 bytes")
        if lanes < 1:
            raise SimulationError("lane engine needs at least one lane")
        self.size = image.shape[0]
        self.lanes = int(lanes)
        self._image32 = image.view(np.uint32)
        self.memory = np.empty((self.lanes, self.size), dtype=np.uint8)
        self.memory[:] = image
        self._m16 = self.memory.view(np.uint16)
        self._m32 = self.memory.view(np.uint32)
        self._regs = np.zeros((32, self.lanes), dtype=np.int64)
        self._reg_rows = list(self._regs)
        self.pcs = np.zeros(self.lanes, dtype=np.int64)
        self.cycle_counts = np.zeros(self.lanes, dtype=np.int64)
        self.instruction_counts = np.zeros(self.lanes, dtype=np.int64)
        self.halted = np.zeros(self.lanes, dtype=bool)
        self.errors: List[Optional[str]] = [None] * self.lanes
        self._alive = np.ones(self.lanes, dtype=bool)
        self.record_events = bool(record_events)
        if record_retires and not record_events:
            raise SimulationError(
                "record_retires requires record_events (retire rows are"
                " derived from the event arena)"
            )
        self.record_retires = bool(record_retires)
        self._retire_cache: Dict[int, np.ndarray] = {}
        self.events: Optional[LaneEventLog] = (
            LaneEventLog(self.lanes) if record_events else None
        )
        self._block_cache: Dict[int, LaneBlock] = (
            block_cache if block_cache is not None else {}
        )
        self._undo: List[Tuple[np.ndarray, object, np.ndarray]] = []
        # Set by generated block code before any side effect: the lane
        # subset a fault must be rolled back and redone for (self-loop
        # blocks shrink it per iteration).
        self._cur_idx = np.empty(0, dtype=np.int64)
        self._budget = 0
        # Per-lane loop-wrap epoch: scheduling priority (see run()).
        self._wraps = np.zeros(self.lanes, dtype=np.int64)
        # Static join points of the image, scanned lazily on the first
        # translation miss (the shared per-device block cache makes
        # misses rare after the first batch).
        self._entries: Optional[frozenset] = None
        # Conservative engine-wide store envelope (word addresses).  If
        # it misses a block's pc range, no lane can have modified that
        # block's code; overlap sends the group to the scalar path.
        self._gmin = self.size
        self._gmax = -1
        self._ran = False

    # -- state access ---------------------------------------------------
    def write_register(self, index: int, value) -> None:
        """Set one register across lanes (scalar broadcast or per-lane)."""
        if index != 0:
            self._regs[index] = np.asarray(value, dtype=np.int64) & _MASK32

    def lane_registers(self, lane: int) -> List[int]:
        return [int(v) for v in self._regs[:, lane]]

    def retire_rows(self, lane: int) -> np.ndarray:
        """One lane's RVFI-style ``(n, 16)`` retire-row matrix.

        Projected lazily from the lane's finalized event rows (the same
        column algebra the scalar engines use — see
        :func:`repro.riscv.retire.retires_from_events`), closed with
        the lane's final pc and, when the lane ended in an
        architectural fault, its trap retire.  Budget exhaustion ends
        the stream without a trap row, matching ``Cpu.run``.
        """
        if not self.record_retires:
            raise SimulationError(
                "retire_rows requires record_retires=True at construction"
            )
        rows = self._retire_cache.get(lane)
        if rows is None:
            final_pc = int(self.pcs[lane])
            rows = retires_from_events(
                self.events.lane_rows(lane).T, None, final_pc
            )
            error = self.errors[lane]
            if error is not None and not is_budget_error(error):
                rows = np.concatenate(
                    [rows, trap_row(rows.shape[0], final_pc, self._fetch_insn(lane))[None, :]]
                )
            self._retire_cache[lane] = rows
        return rows

    def retire_log(self, lane: int) -> RetireLog:
        """Materialise one lane's retires as a standalone RetireLog."""
        return RetireLog.from_rows(self.retire_rows(lane))

    def _fetch_insn(self, lane: int) -> int:
        """The encoding at a lane's final pc with Memory's fault rules."""
        pc = int(self.pcs[lane])
        if pc < 0 or pc + 4 > self.size or pc % 4:
            return 0
        return int.from_bytes(self.memory[lane, pc : pc + 4].tobytes(), "little")

    def _note(self, word_address) -> None:
        """Track the store envelope (called from generated block code)."""
        if isinstance(word_address, (int, np.integer)):
            lo = hi = int(word_address)
        else:
            lo = int(word_address.min())
            hi = int(word_address.max())
        if lo < self._gmin:
            self._gmin = lo
        if hi > self._gmax:
            self._gmax = hi

    # -- scalar fallback ------------------------------------------------
    def _lane_cpu(self, lane: int) -> Cpu:
        """Materialise one lane's state as a scalar reference core."""
        memory = Memory(size_bytes=self.size)
        memory._data[:] = self.memory[lane].tobytes()
        cpu = Cpu(memory, record_events=True)
        cpu.registers = [int(v) for v in self._regs[:, lane]]
        cpu.pc = int(self.pcs[lane])
        cpu.cycle_count = int(self.cycle_counts[lane])
        cpu.instruction_count = int(self.instruction_counts[lane])
        return cpu

    def _absorb(self, lane: int, cpu: Cpu, error: Optional[str]) -> None:
        """Copy a scalar episode's state (and events) back into the lane."""
        # The lane's counter still holds the episode's starting cycle
        # (the scalar core advanced its own copy); the event record
        # needs it to locate the episode inside the lane's trace.
        cycle_start = int(self.cycle_counts[lane])
        self.memory[lane] = np.frombuffer(cpu.memory._data, dtype=np.uint8)
        self._regs[:, lane] = cpu.registers
        self.pcs[lane] = cpu.pc
        self.cycle_counts[lane] = cpu.cycle_count
        self.instruction_counts[lane] = cpu.instruction_count
        self.halted[lane] = cpu.halted
        rows = cpu.events.columns().T
        if rows.shape[0]:
            stores = rows[:, _ROW_OP] == cy.OP_STORE
            if stores.any():
                word_addresses = rows[stores, _ROW_ADDR] & 0xFFFFFFFC
                self._note(word_addresses)
            if self.record_events:
                self.events.append_rows(
                    lane, np.ascontiguousarray(rows), cycle_start
                )
        if error is not None:
            self.errors[lane] = error
        self._alive[lane] = not cpu.halted and error is None

    def _scalar_steps(
        self, lane: int, steps: Optional[int], max_instructions: int
    ) -> None:
        """Run one lane scalar for up to ``steps`` instructions.

        ``steps=None`` runs to termination (halt or budget error) —
        the budget-tail path, mirroring ``Cpu._run_budget_tail``'s
        check-then-step order so exhaustion raises at the exact same
        instruction with the exact same message.
        """
        cpu = self._lane_cpu(lane)
        error = None
        try:
            remaining = steps
            while not cpu.halted:
                if cpu.instruction_count >= max_instructions:
                    raise SimulationError(
                        f"instruction budget {max_instructions} exhausted"
                        f" at pc={cpu.pc:#x}"
                    )
                cpu.step_reference()
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        break
        except SimulationError as exc:
            error = str(exc)
        self._absorb(lane, cpu, error)

    # -- translation ----------------------------------------------------
    def _translate(self, pc: int) -> LaneBlock:
        if self._entries is None:
            self._entries = _static_entry_points(self._image32, self.size)
        pcs, words, fallthrough = _walk_image(
            self._image32, self.size, pc, self._entries
        )
        key = (pc, self.size, tuple(words))
        block = _LANE_CACHE.get(key)
        if block is None:
            if len(_LANE_CACHE) >= _LANE_CACHE_MAX:
                _LANE_CACHE.clear()
            block = _generate_checked_lane(pcs, words, fallthrough, self.size)
            _LANE_CACHE[key] = block
        return block

    # -- the dispatcher -------------------------------------------------
    def run(self, max_instructions: int = 10_000_000) -> "LaneEngine":
        """Execute every lane until it halts, faults, or exhausts budget.

        Unlike ``Cpu.run`` this never raises for a guest-program fault:
        each lane's terminal :class:`SimulationError` message is stored
        in :attr:`errors` (callers decide whether that is fatal), which
        is what batch capture needs — one faulting seed must not sink
        its 63 siblings.
        """
        if self._ran:
            raise SimulationError("LaneEngine.run is single-shot; build a new engine")
        self._ran = True
        self._budget = max_instructions
        pcs = self.pcs
        counts = self.instruction_counts
        alive = self._alive
        cache = self._block_cache
        reg_rows = self._reg_rows
        mem, m16, m32 = self.memory, self._m16, self._m32
        recording = self.record_events
        undo = self._undo
        wraps = self._wraps
        # Warp-scheduling backend kernel, resolved once per run: the
        # numpy selection below costs 4-5 dispatches per loop turn and
        # runs hundreds of times per batch, so a compiled single-pass
        # scan is the cheapest win the compute layer offers here.
        lane_select = get_kernel("lane_select")

        while True:
            # Schedule by (wrap epoch, pc), not bare min-pc: min-pc lets
            # a lane that takes a loop back edge race a whole iteration
            # ahead of parked higher-pc lanes and the warp decays into
            # persistent phase-shifted cohorts.  The wrap counter bumps
            # whenever a dispatch lands a lane at a lower pc (a visible
            # back edge), so lanes in an earlier loop iteration always
            # run first and within one iteration min-pc reconverges
            # branch diamonds at their join pc.  Any schedule is
            # semantically valid — lane state, events and faults are
            # per-lane — so this is purely a throughput choice.
            if lane_select is not None:
                pc, group = lane_select(pcs, wraps, alive)
                if group is None:
                    break
            else:
                active = np.nonzero(alive)[0]
                if active.size == 0:
                    break
                key = (wraps << 32) + pcs
                lead = active[np.argmin(key[active])]
                pc = int(pcs[lead])
                group = active[pcs[active] == pc]

            # One scalar reduce decides whether the exact per-lane
            # budget checks can run at all this dispatch: while every
            # lane is more than one maximal block away from the limit
            # (the whole run, for the default 10M budget) neither the
            # exhaustion nor the tail test can fire, so both are
            # skipped.  Self-loop blocks still bound their own
            # iterations, so a dispatch never retires more than the
            # budget allows regardless of this shortcut.
            budget_near = (
                max_instructions - int(counts.max()) <= MAX_BLOCK_INSTRUCTIONS
            )
            if budget_near:
                # Budget exhaustion first (matches the threaded
                # engine's check order on a translation-cache miss).
                spent = max_instructions - counts[group] <= 0
                if spent.any():
                    for lane in group[spent].tolist():
                        self.errors[lane] = (
                            f"instruction budget {max_instructions} exhausted"
                            f" at pc={pc:#x}"
                        )
                        alive[lane] = False
                    group = group[~spent]
                    if group.size == 0:
                        continue

            block = cache.get(pc)
            if block is None:
                try:
                    block = self._translate(pc)
                except SimulationError as exc:
                    if self._gmax >= 0:
                        # Some lane stored somewhere: its live code may
                        # differ from the image, so step exactly.
                        for lane in group.tolist():
                            self._scalar_steps(lane, 1, max_instructions)
                            wraps[lane] += pcs[lane] < pc
                    else:
                        message = str(exc)
                        for lane in group.tolist():
                            self.errors[lane] = message
                            alive[lane] = False
                    continue
                cache[pc] = block

            # Self-modified-code guard: any store into this block's pc
            # envelope sends the whole group through exact scalar steps.
            if self._gmax >= block.bmin and self._gmin <= block.bmax:
                for lane in group.tolist():
                    self._scalar_steps(lane, 1, max_instructions)
                    wraps[lane] += pcs[lane] < pc
                continue

            # Budget tail: lanes that cannot retire the whole block
            # finish scalar (terminal: halt or the exact budget error).
            if budget_near:
                tail = max_instructions - counts[group] < block.length
                if tail.any():
                    for lane in group[tail].tolist():
                        self._scalar_steps(lane, None, max_instructions)
                    group = group[~tail]
                    if group.size == 0:
                        continue

            undo.clear()
            try:
                if recording:
                    block.run_recording(self, group, reg_rows, mem, m16, m32)
                else:
                    block.run_fast(self, group, reg_rows, mem, m16, m32)
            except _LaneFault:
                # Roll every store of the unretired block execution
                # back (in reverse: two stores in one block may alias
                # the same cell), then redo those lanes one at a time
                # through the reference interpreter, which raises the
                # exact fault for the lanes that hit it and retires the
                # rest.  ``_cur_idx`` is the faulting lane subset: for
                # a self-loop block, earlier iterations are already
                # committed and lanes that left the loop keep their
                # state — only the current iteration's lanes redo.
                failed = self._cur_idx
                for view, element, old in reversed(undo):
                    view[failed, element] = old
                for lane in failed.tolist():
                    self._scalar_steps(lane, block.length, max_instructions)
            undo.clear()
            wraps[group] += pcs[group] < pc
        return self
