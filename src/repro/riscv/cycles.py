"""PicoRV32-like cycle costs per instruction class.

PicoRV32 is a non-pipelined multi-cycle core; these counts follow the
orders of magnitude of its documentation (regular instructions a few
cycles, memory accesses slightly more, and the sequential
multiplier/divider of the ``PCPI_MUL``/``PCPI_DIV`` co-processors taking
tens of cycles).  The *relative* costs are what matters for the attack:
the long multiply/divide bursts are the "distinguishable and visible
peaks" (Fig. 3a) the segmentation stage locks onto.
"""

#: Dispatch classes used by the CPU and the power model.
OP_ALU = 0
OP_MUL = 1
OP_DIV = 2
OP_LOAD = 3
OP_STORE = 4
OP_BRANCH_NOT_TAKEN = 5
OP_BRANCH_TAKEN = 6
OP_JUMP = 7
OP_SYSTEM = 8

#: Cycles spent per instruction class.
CYCLES = {
    OP_ALU: 3,
    OP_MUL: 40,
    OP_DIV: 40,
    OP_LOAD: 5,
    OP_STORE: 5,
    OP_BRANCH_NOT_TAKEN: 3,
    OP_BRANCH_TAKEN: 5,
    OP_JUMP: 5,
    OP_SYSTEM: 1,
}

CLASS_NAMES = {
    OP_ALU: "alu",
    OP_MUL: "mul",
    OP_DIV: "div",
    OP_LOAD: "load",
    OP_STORE: "store",
    OP_BRANCH_NOT_TAKEN: "branch",
    OP_BRANCH_TAKEN: "branch-taken",
    OP_JUMP: "jump",
    OP_SYSTEM: "system",
}
