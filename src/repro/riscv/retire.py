"""RVFI-style retire records: the cross-engine conformance interface.

riscv-formal's RVFI pins down one canonical record per *retired*
instruction — program counters before/after, the fetched encoding,
source/destination register addresses and data, and the memory access —
so that independently built cores can be diffed instruction by
instruction instead of "final state happened to match".  This module
carries the same idea across the repo's three RV32IM engines:

- the scalar reference interpreter emits :class:`RetireLog` rows live
  from inside :meth:`~repro.riscv.cpu.Cpu.step_reference` (the semantic
  anchor — it computes every field from the architectural state it just
  touched);
- the threaded engine materialises its rows at the end of a run from
  the event stream through cached **per-block retire plans**
  (:meth:`~repro.riscv.threaded.TranslatedBlock.retire_plan`), the same
  static/dynamic split its event flush uses;
- the lane engine projects lane-major rows out of its finalized
  :class:`~repro.riscv.lanes.LaneEventLog` arena slices, one lane at a
  time on demand.

The field mapping against riscv-formal (what is kept, what is dropped
and why) is documented in DESIGN.md §5k.  A *trap* retire is appended
when execution ends in an architectural fault (illegal instruction,
misaligned or out-of-range memory access); instruction-budget
exhaustion is a simulator limit, not a trap, and ends the stream
without a trap row.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.riscv.isa import decode


class RetireEvent(NamedTuple):
    """One RVFI-style retirement record (all fields unsigned ints)."""

    order: int  # position in the retire stream (0-based)
    pc_rdata: int  # pc this instruction was fetched from
    pc_wdata: int  # pc the core moved to after retiring it
    insn: int  # the fetched 32-bit encoding
    rs1_addr: int
    rs1_rdata: int
    rs2_addr: int
    rs2_rdata: int
    rd_addr: int  # 0 when the instruction writes no register
    rd_wdata: int  # 0 when rd_addr is 0
    trap: int  # 1 on the final faulting retire, else 0
    mem_addr: int  # effective address of the access, else 0
    mem_rmask: int  # active read byte lanes (0x1 / 0x3 / 0xF)
    mem_wmask: int  # active write byte lanes
    mem_rdata: int  # raw loaded bytes (no sign extension)
    mem_wdata: int  # stored bytes


RETIRE_FIELDS = RetireEvent._fields
NUM_RETIRE_FIELDS = len(RETIRE_FIELDS)

#: Active byte lanes per memory mnemonic.
LOAD_MASKS: Dict[str, int] = {"lb": 0x1, "lbu": 0x1, "lh": 0x3, "lhu": 0x3, "lw": 0xF}
STORE_MASKS: Dict[str, int] = {"sb": 0x1, "sh": 0x3, "sw": 0xF}

#: Byte-lane mask -> value mask, indexed by the 4-bit lane mask.  Used
#: to strip the interpreter's sign extension back off loaded data.
DATA_MASKS = np.zeros(16, dtype=np.int64)
DATA_MASKS[0x1] = 0xFF
DATA_MASKS[0x3] = 0xFFFF
DATA_MASKS[0xF] = 0xFFFFFFFF

#: The same table as plain Python ints, for the scalar per-step path.
DATA_MASK_VALUES: List[int] = [int(v) for v in DATA_MASKS]

_WORD_PLANS: Dict[int, Tuple[int, int, int, int, int]] = {}


def word_plan(word: int) -> Tuple[int, int, int, int, int]:
    """The static retire columns of one instruction word.

    Returns ``(rs1_addr, rs2_addr, rd_addr, mem_rmask, mem_wmask)``.
    The decoder already zeroes the register addresses a format does not
    read or write (stores/branches have no rd, U/J formats no sources,
    immediate shifts no rs2), so these five values — everything in a
    retire record that does not depend on runtime state — fall straight
    out of :func:`~repro.riscv.isa.decode`, cached per distinct word.
    """
    plan = _WORD_PLANS.get(word)
    if plan is None:
        ins = decode(word)
        plan = (
            ins.rs1,
            ins.rs2,
            ins.rd,
            LOAD_MASKS.get(ins.mnemonic, 0),
            STORE_MASKS.get(ins.mnemonic, 0),
        )
        _WORD_PLANS[word] = plan
    return plan


def plan_columns(words: np.ndarray) -> np.ndarray:
    """Static plan columns, ``(5, n)`` int64, for a vector of words.

    Programs repeat a handful of distinct encodings thousands of times,
    so the plan is built once per unique word and scattered back.
    """
    words = np.asarray(words, dtype=np.int64)
    if words.size == 0:
        return np.zeros((5, 0), dtype=np.int64)
    uniq, inverse = np.unique(words, return_inverse=True)
    table = np.empty((uniq.shape[0], 5), dtype=np.int64)
    for i, word in enumerate(uniq):
        table[i] = word_plan(int(word))
    return table[inverse].T.copy()


def retires_from_events(
    cols: np.ndarray,
    plan: Optional[np.ndarray],
    final_pc: int,
    start_order: int = 0,
) -> np.ndarray:
    """Project ``(8, n)`` event columns into ``(n, 16)`` retire rows.

    ``plan`` is the matching ``(5, n)`` static-column matrix (built
    from per-block retire plans or :func:`plan_columns`; ``None``
    derives it from the event words).  The event log already carries
    every dynamic quantity a retire record needs — the register-file
    reads at the decoded source addresses, the written result, the
    memory address and the per-retire pc — so the projection is pure
    column algebra; ``final_pc`` closes the ``pc_wdata`` chain on the
    last retire (every earlier one hands off to its successor's
    ``pc_rdata``).
    """
    n = cols.shape[1]
    out = np.zeros((n, NUM_RETIRE_FIELDS), dtype=np.int64)
    if n == 0:
        return out
    if plan is None:
        plan = plan_columns(cols[1])
    rs1_addr, rs2_addr, rd_addr, rmask, wmask = plan
    result = cols[4]
    out[:, 0] = np.arange(start_order, start_order + n)
    out[:, 1] = cols[7]
    out[:-1, 2] = cols[7][1:]
    out[-1, 2] = final_pc
    out[:, 3] = cols[1]
    out[:, 4] = rs1_addr
    out[:, 5] = cols[2]
    out[:, 6] = rs2_addr
    out[:, 7] = cols[3]
    out[:, 8] = rd_addr
    out[:, 9] = np.where(rd_addr != 0, result, 0)
    out[:, 11] = np.where((rmask | wmask) != 0, cols[6], 0)
    out[:, 12] = rmask
    out[:, 13] = wmask
    # Loads record the sign-extended value as their result; masking to
    # the active byte lanes recovers the raw memory data.  Store
    # results are already width-masked, so the AND is the identity.
    out[:, 14] = result & DATA_MASKS[rmask]
    out[:, 15] = result & DATA_MASKS[wmask]
    return out


def trap_row(order: int, pc: int, insn: int) -> np.ndarray:
    """The final retire of a faulting execution.

    riscv-formal retires a trapped instruction with ``rvfi_trap`` set
    and no register or memory writes; we keep exactly that — the pc the
    fault was raised at (``pc_wdata`` stays there: the simulator stops)
    and the fetched encoding when the fetch itself succeeded (0 for an
    out-of-range or misaligned fetch).
    """
    row = np.zeros(NUM_RETIRE_FIELDS, dtype=np.int64)
    row[0] = order
    row[1] = pc
    row[2] = pc
    row[3] = insn
    row[10] = 1
    return row


def is_budget_error(message: str) -> bool:
    """Whether a SimulationError message is budget exhaustion.

    The budget message is an exact cross-engine contract (pinned by
    ``test_budget_error_message_exact``), which makes it a reliable
    discriminator: budget exhaustion is a simulator limit and produces
    no trap retire, every other SimulationError is an architectural
    fault and does.
    """
    return message.startswith("instruction budget ")


class RetireLog(Sequence):
    """Structure-of-arrays store of retire records.

    The same shape as :class:`~repro.riscv.cpu.EventLog` — one
    preallocated ``(capacity, 16)`` int64 matrix grown geometrically,
    columnar readers, sequence compatibility, rows-only pickling — but
    without the deferred-flush machinery: the scalar engine appends one
    row per retirement and the compiled engines land whole runs via
    :meth:`append_rows`.
    """

    _NUM_FIELDS = NUM_RETIRE_FIELDS

    def __init__(self, capacity: int = 256) -> None:
        self._data = np.zeros((max(int(capacity), 1), self._NUM_FIELDS), dtype=np.int64)
        self._length = 0

    # -- recording ------------------------------------------------------
    def append(
        self,
        pc_rdata: int,
        pc_wdata: int,
        insn: int,
        rs1_addr: int,
        rs1_rdata: int,
        rs2_addr: int,
        rs2_rdata: int,
        rd_addr: int,
        rd_wdata: int,
        trap: int,
        mem_addr: int,
        mem_rmask: int,
        mem_wmask: int,
        mem_rdata: int,
        mem_wdata: int,
    ) -> None:
        """Record one retirement; ``order`` is the row position."""
        n = self._length
        data = self._data
        if n == data.shape[0]:
            self.reserve(1)
            data = self._data
        data[n] = (
            n,
            pc_rdata,
            pc_wdata,
            insn,
            rs1_addr,
            rs1_rdata,
            rs2_addr,
            rs2_rdata,
            rd_addr,
            rd_wdata,
            trap,
            mem_addr,
            mem_rmask,
            mem_wmask,
            mem_rdata,
            mem_wdata,
        )
        self._length = n + 1

    def append_rows(self, rows: np.ndarray) -> None:
        """Bulk-append an ``(n, 16)`` retire-row matrix."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1, self._NUM_FIELDS)
        if not rows.shape[0]:
            return
        self.reserve(rows.shape[0])
        self._data[self._length : self._length + rows.shape[0]] = rows
        self._length += rows.shape[0]

    def append_trap(self, pc: int, insn: int) -> None:
        """Record the terminal trap retire of a faulting run."""
        self.append_rows(trap_row(self._length, pc, insn)[None, :])

    def reserve(self, extra: int) -> None:
        """Ensure room for ``extra`` more rows (geometric growth)."""
        need = self._length + extra
        capacity = self._data.shape[0]
        if need <= capacity:
            return
        new_capacity = max(capacity, 1)
        while new_capacity < need:
            new_capacity *= 2
        grown = np.zeros((new_capacity, self._NUM_FIELDS), dtype=np.int64)
        grown[: self._length] = self._data[: self._length]
        self._data = grown

    def clear(self) -> None:
        """Drop all rows; the buffer is kept (and re-zeroed) for reuse."""
        if self._length:
            self._data[: self._length].fill(0)
        self._length = 0

    # -- columnar access ------------------------------------------------
    def rows(self) -> np.ndarray:
        """The ``(len(self), 16)`` row matrix (a view, not a copy)."""
        return self._data[: self._length]

    def columns(self) -> np.ndarray:
        """The ``(16, len(self))`` field matrix (a view, not a copy)."""
        return self._data[: self._length].T

    def column(self, name: str) -> np.ndarray:
        """One named field as an int64 vector (a view, not a copy)."""
        return self._data[: self._length, RETIRE_FIELDS.index(name)]

    # -- sequence compatibility ----------------------------------------
    def __len__(self) -> int:
        return self._length

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[RetireEvent, List[RetireEvent]]:
        if isinstance(index, slice):
            return [
                RetireEvent(*(int(v) for v in self._data[i]))
                for i in range(*index.indices(self._length))
            ]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("retire index out of range")
        return RetireEvent(*(int(v) for v in self._data[index]))

    def __iter__(self) -> Iterator[RetireEvent]:
        for i in range(self._length):
            yield RetireEvent(*(int(v) for v in self._data[i]))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RetireLog):
            return np.array_equal(self.rows(), other.rows())
        if isinstance(other, (list, tuple, Sequence)) and not isinstance(
            other, (str, bytes)
        ):
            if len(other) != len(self):
                return False
            try:
                return all(a == b for a, b in zip(self, other))
            except TypeError:
                return NotImplemented
        return NotImplemented

    @classmethod
    def from_rows(cls, rows: np.ndarray) -> "RetireLog":
        """Build a log directly from an ``(n, 16)`` row matrix."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1, cls._NUM_FIELDS)
        log = cls(capacity=max(rows.shape[0], 1))
        log._data[: rows.shape[0]] = rows
        log._length = rows.shape[0]
        return log

    # -- pickling -------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"rows": self._data[: self._length].copy()}

    def __setstate__(self, state: dict) -> None:
        rows = np.asarray(state["rows"], dtype=np.int64).reshape(-1, self._NUM_FIELDS)
        self._data = np.zeros((max(rows.shape[0], 1), self._NUM_FIELDS), dtype=np.int64)
        self._data[: rows.shape[0]] = rows
        self._length = rows.shape[0]

    def __repr__(self) -> str:
        return f"RetireLog(length={self._length})"
