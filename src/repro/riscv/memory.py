"""Flat little-endian RAM for the RV32 core."""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError

_MASK32 = 0xFFFFFFFF


class Memory:
    """A contiguous byte-addressable memory starting at address 0."""

    def __init__(self, size_bytes: int = 1 << 20) -> None:
        if size_bytes <= 0 or size_bytes % 4:
            raise SimulationError("memory size must be a positive multiple of 4")
        self.size = size_bytes
        self._data = bytearray(size_bytes)

    def _check(self, address: int, width: int) -> None:
        if address < 0 or address + width > self.size:
            raise SimulationError(
                f"memory access at {address:#x} (+{width}) outside [0, {self.size:#x})"
            )
        if address % width:
            raise SimulationError(
                f"misaligned {width}-byte access at {address:#x}"
            )

    # ------------------------------------------------------------------
    def load_word(self, address: int) -> int:
        """Read a 32-bit little-endian word."""
        self._check(address, 4)
        return int.from_bytes(self._data[address : address + 4], "little")

    def store_word(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        self._check(address, 4)
        self._data[address : address + 4] = (value & _MASK32).to_bytes(4, "little")

    def load_half(self, address: int) -> int:
        """Read an unsigned 16-bit value."""
        self._check(address, 2)
        return int.from_bytes(self._data[address : address + 2], "little")

    def store_half(self, address: int, value: int) -> None:
        """Write a 16-bit value."""
        self._check(address, 2)
        self._data[address : address + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def load_byte(self, address: int) -> int:
        """Read an unsigned byte."""
        self._check(address, 1)
        return self._data[address]

    def store_byte(self, address: int, value: int) -> None:
        """Write a byte."""
        self._check(address, 1)
        self._data[address] = value & 0xFF

    # ------------------------------------------------------------------
    def load_program(self, words: List[int], base_address: int = 0) -> None:
        """Copy a list of 32-bit words into memory at ``base_address``.

        An in-range aligned program blits in one slice assignment; the
        out-of-range / misaligned cases fall back to per-word stores so
        the fault (including which prefix was written before it) matches
        the word-at-a-time behaviour exactly.
        """
        end = base_address + 4 * len(words)
        if base_address % 4 or base_address < 0 or end > self.size:
            for i, word in enumerate(words):
                self.store_word(base_address + 4 * i, word)
            return
        self._data[base_address:end] = b"".join(
            (word & _MASK32).to_bytes(4, "little") for word in words
        )

    def read_words(self, address: int, count: int) -> List[int]:
        """Read ``count`` consecutive words (for test assertions)."""
        return [self.load_word(address + 4 * i) for i in range(count)]
