"""Deterministic randomness plumbing.

Everything stochastic in the reproduction (key generation, noise
sampling, leakage noise, attack trace selection) goes through numpy
``Generator`` objects created here, so that every experiment is
reproducible from a single integer seed.  ``derive_rng`` plays the role
of SEAL's ``RandomToStandardAdapter``: it turns one master source into
independent per-purpose streams.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a numpy ``Generator`` from a seed, sequence or existing rng.

    Passing an existing ``Generator`` returns it unchanged so call sites
    can accept either a seed or a ready-made stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` tagged by ``label``.

    The label is hashed into the spawn key so that e.g. the "public key"
    stream and the "noise" stream of one encryption are decorrelated but
    still fully determined by the parent seed.
    """
    material = [b for b in label.encode("utf-8")]
    child_seed = np.random.SeedSequence(
        entropy=int(rng.integers(0, 2**63 - 1)), spawn_key=tuple(material)
    )
    return np.random.default_rng(child_seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Return ``count`` independent generators derived from one seed."""
    sequence = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in sequence.spawn(count)]


def rng_from_optional(seed: Optional[SeedLike], default_seed: int) -> np.random.Generator:
    """Like :func:`new_rng` but with an explicit fallback seed."""
    if seed is None:
        return np.random.default_rng(default_seed)
    return new_rng(seed)
