"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any

from repro.errors import ParameterError


def check_type(name: str, value: Any, expected: type) -> None:
    """Raise :class:`ParameterError` unless ``value`` is an ``expected``."""
    if not isinstance(value, expected):
        raise ParameterError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ParameterError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ParameterError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise :class:`ParameterError` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ParameterError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise :class:`ParameterError` unless ``value`` is a power of two."""
    if value <= 0 or value & (value - 1):
        raise ParameterError(f"{name} must be a power of two, got {value!r}")
