"""Bit-level helpers used by the NTT, the RISC-V core and the power model.

The power model in :mod:`repro.power.leakage` is built on Hamming weights
and Hamming distances of 32-bit words, so these helpers are deliberately
fast for both scalars and numpy arrays.
"""

from __future__ import annotations

import numpy as np

_WORD_MASK = 0xFFFFFFFF


def hamming_weight(value: int) -> int:
    """Return the number of set bits of a non-negative integer.

    Values are masked to 32 bits first, matching the word size of the
    PicoRV32 target: the paper's leakage comes from 32-bit datapath
    activity.

    >>> hamming_weight(0)
    0
    >>> hamming_weight(0xFFFFFFFF)
    32
    >>> hamming_weight(-1)  # two's complement on 32 bits
    32
    """
    return int(value & _WORD_MASK).bit_count()


def hamming_distance(first: int, second: int) -> int:
    """Return the Hamming distance between two 32-bit words.

    >>> hamming_distance(0b1010, 0b0110)
    2
    """
    return hamming_weight(first ^ second)


def hamming_weight_array(values: np.ndarray) -> np.ndarray:
    """Vectorised 32-bit Hamming weight for an integer numpy array."""
    words = np.asarray(values).astype(np.int64) & _WORD_MASK
    counts = np.zeros(words.shape, dtype=np.int64)
    for shift in range(0, 32, 8):
        counts += _BYTE_POPCOUNT[(words >> shift) & 0xFF]
    return counts


_BYTE_POPCOUNT = np.array([int(i).bit_count() for i in range(256)], dtype=np.int64)


def bit_length(value: int) -> int:
    """Return the bit length of ``value`` (0 for 0)."""
    return int(value).bit_length()


def bit_reverse(value: int, width: int) -> int:
    """Reverse the lowest ``width`` bits of ``value``.

    Used to build the bit-reversed twiddle tables of the iterative NTT.

    >>> bit_reverse(0b001, 3)
    4
    """
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result
