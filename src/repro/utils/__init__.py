"""Small shared utilities: bit manipulation, RNG plumbing, validation."""

from repro.utils.bitops import (
    bit_length,
    bit_reverse,
    hamming_distance,
    hamming_weight,
    hamming_weight_array,
)
from repro.utils.rng import derive_rng, new_rng
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_type,
)

__all__ = [
    "bit_length",
    "bit_reverse",
    "hamming_distance",
    "hamming_weight",
    "hamming_weight_array",
    "derive_rng",
    "new_rng",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "check_type",
]
