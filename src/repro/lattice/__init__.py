"""Lattice-reduction substrate.

Provides what the paper's last stage depends on: the BKZ machinery used
to "explore the remaining search space".  Full-scale BKZ-382 is beyond
anyone's reach (the paper also only *estimates* it), so this package
serves two roles:

- actually *solving* toy instances end to end (LLL, SVP enumeration,
  BKZ, Kannan's embedding) to validate the attack algebra, and
- the GSA/bikz cost model (:mod:`repro.lattice.gsa`) that the
  LWE-with-hints estimator uses for Tables III and IV.
"""

from repro.lattice.bkz import bkz_reduce
from repro.lattice.embedding import kannan_embedding, solve_lwe_primal
from repro.lattice.enumeration import shortest_vector
from repro.lattice.gsa import bkz_delta, gsa_log_profile
from repro.lattice.gso import gram_schmidt
from repro.lattice.lll import lll_reduce

__all__ = [
    "bkz_delta",
    "bkz_reduce",
    "gram_schmidt",
    "gsa_log_profile",
    "kannan_embedding",
    "lll_reduce",
    "shortest_vector",
    "solve_lwe_primal",
]
