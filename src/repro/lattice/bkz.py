"""Block Korkine-Zolotarev (BKZ) reduction.

Textbook BKZ: LLL-reduce, then sweep blocks of size ``beta``; whenever
the block's exact shortest vector (found by enumeration) beats the
block's first basis vector, the block is replaced by a unimodular
transform whose first row realises that vector.  The transform is built
by completing the (primitive) enumeration coefficients to a unimodular
matrix, so the lattice is preserved *exactly* and entries stay small -
no rank-deficient stacking, no precision-destroying HNF detour.

Used by the toy end-to-end attack; the *cost model* for large beta
lives in :mod:`repro.lattice.gsa`.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import LatticeError
from repro.lattice.enumeration import shortest_vector_with_coefficients
from repro.lattice.lll import lll_reduce


def _unimodular_with_first_row(coeffs: List[int]) -> List[List[int]]:
    """A unimodular integer matrix whose first row is ``coeffs``.

    ``coeffs`` must be primitive (gcd 1) - true for the coefficients of
    a shortest lattice vector.  Constructed by running the gcd
    elimination ``U c = e1`` on the column vector while tracking
    ``W = U^-1`` (whose first column is then ``c``); the answer is
    ``W^T``.
    """
    k = len(coeffs)
    c = [int(x) for x in coeffs]
    if math.gcd(*(abs(x) for x in c)) != 1 if k > 1 else abs(c[0]) != 1:
        raise LatticeError(f"coefficients are not primitive: {c}")
    w = [[1 if i == j else 0 for j in range(k)] for i in range(k)]  # U^-1

    def row_op(i: int, j: int, q: int) -> None:
        """c_i -= q * c_j, mirrored as W col_j += q * col_i."""
        c[i] -= q * c[j]
        for r in range(k):
            w[r][j] += q * w[r][i]

    while True:
        nonzero = [i for i in range(k) if c[i] != 0]
        if len(nonzero) == 1:
            pivot = nonzero[0]
            break
        nonzero.sort(key=lambda i: abs(c[i]))
        small, other = nonzero[0], nonzero[1]
        row_op(other, small, c[other] // c[small])
    if pivot != 0:
        # swap entries 0 and pivot of c; mirror as a W column swap
        c[0], c[pivot] = c[pivot], c[0]
        for r in range(k):
            w[r][0], w[r][pivot] = w[r][pivot], w[r][0]
    if c[0] == -1:
        c[0] = 1
        for r in range(k):
            w[r][0] = -w[r][0]
    if c[0] != 1:
        raise LatticeError("coefficient vector was not primitive")
    return [[w[r][0] for r in range(k)]] + [
        [w[r][col] for r in range(k)] for col in range(1, k)
    ]


def bkz_reduce(basis: np.ndarray, beta: int = 10, tours: int = 4) -> np.ndarray:
    """BKZ-reduce an integer basis with block size ``beta``.

    Raises :class:`LatticeError` for block sizes beyond the enumeration
    limit (25).
    """
    if beta < 2:
        raise LatticeError(f"beta must be >= 2, got {beta}")
    if beta > 25:
        raise LatticeError(f"toy BKZ limited to beta <= 25, got {beta}")
    reduced = lll_reduce(basis)
    n = reduced.shape[0]
    for _ in range(tours):
        changed = False
        for start in range(n - 1):
            stop = min(start + beta, n)
            block = [list(row) for row in reduced[start:stop]]
            candidate, coeffs = shortest_vector_with_coefficients(
                np.array(block, dtype=object)
            )
            candidate_norm = sum(int(x) * int(x) for x in candidate)
            current_norm = sum(int(x) * int(x) for x in reduced[start])
            if candidate_norm >= current_norm:
                continue
            transform = _unimodular_with_first_row([int(x) for x in coeffs])
            new_block = [
                [
                    sum(int(t) * int(block[j][col]) for j, t in enumerate(trow))
                    for col in range(len(block[0]))
                ]
                for trow in transform
            ]
            rows = [list(row) for row in reduced]
            rows[start:stop] = new_block
            reduced = lll_reduce(np.array(rows, dtype=object))
            changed = True
        if not changed:
            break
    return reduced
