"""Primal (Kannan) embedding: solving LWE by unique-SVP.

Builds the standard embedding lattice for an LWE instance
``b = A s + e (mod q)`` so that ``(e, s, M)`` (up to sign) is its
unusually short vector, then recovers ``s`` from a reduced basis.  The
toy end-to-end example uses this to finish the attack when the
side-channel only yields partial information.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import LatticeError
from repro.lattice.bkz import bkz_reduce
from repro.lattice.lll import lll_reduce


def kannan_embedding(
    a_matrix: np.ndarray,
    b_vector: Sequence[int],
    q: int,
    embedding_constant: int = 1,
) -> np.ndarray:
    """The (m + n + 1)-dimensional primal embedding basis.

    Rows generate all ``(A s + x q - c b | s | -c M)``; the target
    ``(e | -s | -M)``-style combination is unusually short.  Column
    layout: ``m`` error coordinates, ``n`` secret coordinates, 1
    embedding coordinate.
    """
    a_matrix = np.asarray(a_matrix)
    m, n = a_matrix.shape
    if len(b_vector) != m:
        raise LatticeError(f"b has length {len(b_vector)}, expected {m}")
    dim = m + n + 1
    basis = np.zeros((dim, dim), dtype=object)
    # q-vectors on the error block
    for i in range(m):
        basis[i, i] = q
    # secret rows: (A^T)_j on the error block, identity on the secret block
    for j in range(n):
        for i in range(m):
            basis[m + j, i] = int(a_matrix[i, j]) % q
        basis[m + j, m + j] = 1
    # embedding row carries b and the embedding constant
    for i in range(m):
        basis[m + n, i] = int(b_vector[i]) % q
    basis[m + n, m + n] = int(embedding_constant)
    return basis


def solve_lwe_primal(
    a_matrix: np.ndarray,
    b_vector: Sequence[int],
    q: int,
    beta: Optional[int] = None,
    error_bound: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Recover ``(s, e)`` from a (toy) LWE instance by lattice reduction.

    Uses LLL, escalating to BKZ-``beta`` when given.  Returns ``(s, e)``
    with ``b = A s + e (mod q)``; raises :class:`LatticeError` when no
    plausibly short solution emerges (instance too hard for the given
    reduction effort).
    """
    a_matrix = np.asarray(a_matrix)
    m, n = a_matrix.shape
    basis = kannan_embedding(a_matrix, b_vector, q)
    reduced = lll_reduce(basis)
    if beta is not None:
        reduced = bkz_reduce(reduced, beta=beta, tours=4)
    for row in reduced:
        candidate = _extract_solution(row, a_matrix, b_vector, q, error_bound)
        if candidate is not None:
            return candidate
    raise LatticeError(
        "no short embedding vector found; increase beta or shrink the instance"
    )


def negacyclic_matrix(coeffs: Sequence[int], q: int) -> np.ndarray:
    """Matrix form of multiplication by ``p`` in ``Z_q[x]/(x^n + 1)``.

    Row i gives the coefficient of ``x^i`` in ``p * u`` as a linear form
    in ``u``: ``A[i, j] = +-p_{i-j mod n}`` with a sign flip on wrap -
    this turns the attacked ring equation ``c1 = p1 u + e2`` into a
    standard LWE system for the lattice stage.

    >>> negacyclic_matrix([1, 2], 17).tolist()  # p = 1 + 2x, n = 2
    [[1, 15], [2, 1]]
    """
    n = len(coeffs)
    matrix = np.zeros((n, n), dtype=object)
    for i in range(n):
        for j in range(n):
            k = i - j
            if k >= 0:
                matrix[i, j] = int(coeffs[k]) % q
            else:
                matrix[i, j] = (-int(coeffs[k + n])) % q
    return matrix


def eliminate_known_errors(
    a_matrix: np.ndarray,
    b_vector: Sequence[int],
    q: int,
    known_errors: dict,
) -> Tuple[np.ndarray, np.ndarray, "SecretReconstructor"]:
    """Exploit perfectly hinted error coefficients by modular elimination.

    Every equation whose error is known exactly becomes a linear
    constraint ``<a_i, s> = b_i - e_i (mod q)``; Gaussian elimination
    over ``Z_q`` (q prime) solves ``r`` secret coordinates in terms of
    the others, shrinking the residual LWE instance to ``n - r``
    unknowns and ``m - |known|`` noisy equations.  Returns the reduced
    instance plus a :class:`SecretReconstructor` mapping the reduced
    solution back to the full secret.
    """
    a_matrix = np.asarray(a_matrix)
    m, n = a_matrix.shape
    exact_rows = []
    exact_rhs = []
    noisy_rows = []
    noisy_rhs = []
    for i in range(m):
        if i in known_errors:
            exact_rows.append([int(x) % q for x in a_matrix[i]])
            exact_rhs.append((int(b_vector[i]) - int(known_errors[i])) % q)
        else:
            noisy_rows.append([int(x) % q for x in a_matrix[i]])
            noisy_rhs.append(int(b_vector[i]) % q)

    # row-reduce [exact_rows | rhs] mod q
    pivots: list = []  # (row index in echelon, column)
    echelon = [row + [rhs] for row, rhs in zip(exact_rows, exact_rhs)]
    rank = 0
    for col in range(n):
        pivot = next(
            (r for r in range(rank, len(echelon)) if echelon[r][col] % q != 0), None
        )
        if pivot is None:
            continue
        echelon[rank], echelon[pivot] = echelon[pivot], echelon[rank]
        inv = pow(echelon[rank][col], -1, q)
        echelon[rank] = [(x * inv) % q for x in echelon[rank]]
        for r in range(len(echelon)):
            if r != rank and echelon[r][col] % q:
                factor = echelon[r][col]
                echelon[r] = [
                    (x - factor * y) % q for x, y in zip(echelon[r], echelon[rank])
                ]
        pivots.append(col)
        rank += 1
        if rank == n:
            break
    free_columns = [c for c in range(n) if c not in pivots]

    # express pivot secrets: s_pivot = rhs' - sum_free coeff * s_free
    # substitute into the noisy equations
    reduced_rows = []
    reduced_rhs = []
    for row, rhs in zip(noisy_rows, noisy_rhs):
        new_row = [row[c] for c in free_columns]
        new_rhs = rhs
        for r, col in enumerate(pivots):
            coeff = row[col]
            if coeff:
                new_rhs = (new_rhs - coeff * echelon[r][n]) % q
                for j, free_col in enumerate(free_columns):
                    new_row[j] = (new_row[j] - coeff * echelon[r][free_col]) % q
        reduced_rows.append(new_row)
        reduced_rhs.append(new_rhs)

    reconstructor = SecretReconstructor(q, n, pivots, free_columns, echelon)
    return (
        np.array(reduced_rows, dtype=object).reshape(len(reduced_rows), len(free_columns)),
        np.array(reduced_rhs, dtype=object),
        reconstructor,
    )


class SecretReconstructor:
    """Maps a reduced-instance secret back to the full secret (centered)."""

    def __init__(self, q, n, pivots, free_columns, echelon):
        self.q = q
        self.n = n
        self.pivots = pivots
        self.free_columns = free_columns
        self.echelon = echelon

    @property
    def reduced_dimension(self) -> int:
        """Number of remaining secret unknowns."""
        return len(self.free_columns)

    def full_secret(self, reduced_secret: Sequence[int]) -> np.ndarray:
        """Reassemble the full secret from the free coordinates."""
        if len(reduced_secret) != len(self.free_columns):
            raise LatticeError("reduced secret has the wrong length")
        q = self.q
        s = [0] * self.n
        for j, col in enumerate(self.free_columns):
            s[col] = int(reduced_secret[j]) % q
        for r, col in enumerate(self.pivots):
            value = self.echelon[r][self.n]
            for free_col in self.free_columns:
                value = (value - self.echelon[r][free_col] * s[free_col]) % q
            s[col] = value
        centered = [v - q if v > q // 2 else v for v in s]
        return np.array(centered, dtype=object)


def _extract_solution(row, a_matrix, b_vector, q, error_bound):
    m, n = a_matrix.shape
    marker = int(row[m + n])
    if abs(marker) != 1:
        return None
    # row = c * (e | -s | 1) with c = marker = +-1
    e = np.array([marker * int(x) for x in row[:m]], dtype=object)
    s = np.array([-marker * int(x) for x in row[m : m + n]], dtype=object)
    if error_bound is not None and any(abs(int(x)) > error_bound for x in e):
        return None
    # verify b = A s + e (mod q)
    for i in range(m):
        lhs = (sum(int(a_matrix[i, j]) * int(s[j]) for j in range(n)) + int(e[i])) % q
        if lhs != int(b_vector[i]) % q:
            return None
    return s, e
