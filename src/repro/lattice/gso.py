"""Gram-Schmidt orthogonalisation for lattice bases."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import LatticeError


def gram_schmidt(basis: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(B*, mu)`` with ``B = mu @ B*`` and ``B*`` orthogonal.

    ``basis`` rows are the lattice vectors.  Raises
    :class:`LatticeError` when the rows are linearly dependent.
    """
    basis = np.asarray(basis, dtype=np.float64)
    rows, cols = basis.shape
    if rows > cols:
        raise LatticeError(f"basis has {rows} rows in dimension {cols}")
    orthogonal = np.zeros_like(basis)
    mu = np.eye(rows)
    norms = np.zeros(rows)
    for i in range(rows):
        vector = basis[i].copy()
        for j in range(i):
            mu[i, j] = basis[i] @ orthogonal[j] / norms[j]
            vector -= mu[i, j] * orthogonal[j]
        norms[i] = vector @ vector
        if norms[i] <= 1e-12:
            raise LatticeError(f"basis row {i} is linearly dependent")
        orthogonal[i] = vector
    return orthogonal, mu


def gso_norms(basis: np.ndarray) -> np.ndarray:
    """Squared Gram-Schmidt norms ``||b_i*||^2`` of a basis."""
    orthogonal, _ = gram_schmidt(basis)
    return np.einsum("ij,ij->i", orthogonal, orthogonal)


def log_volume(basis: np.ndarray) -> float:
    """Natural log of the lattice volume (product of GSO norms)."""
    return 0.5 * float(np.sum(np.log(gso_norms(basis))))
