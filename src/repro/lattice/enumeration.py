"""SVP enumeration (Schnorr-Euchner) over a Gram-Schmidt profile.

Exact shortest-vector search in small dimensions: the workhorse inside
the BKZ blocks of :mod:`repro.lattice.bkz` and of the toy end-to-end
attacks.  Exponential in the dimension - keep blocks below ~25.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import LatticeError
from repro.lattice.lll import _float_gso


def _enumerate_coefficients(
    mu: np.ndarray, norms: np.ndarray, radius_sq: float
) -> Optional[np.ndarray]:
    """Schnorr-Euchner depth-first search for the shortest combination.

    Returns integer coefficients of a nonzero vector strictly shorter
    than ``sqrt(radius_sq)`` in the basis spanned by the GSO data, or
    None when the first basis vector is already shortest.
    """
    n = len(norms)
    best: Optional[np.ndarray] = None
    best_sq = radius_sq

    # state per level
    x = np.zeros(n, dtype=np.int64)  # current coefficients
    centers = np.zeros(n)
    partial = np.zeros(n + 1)  # accumulated squared length above level i
    deltas = np.zeros(n, dtype=np.int64)
    signs = np.ones(n, dtype=np.int64)

    level = n - 1
    centers[level] = 0.0
    x[level] = 0
    deltas[level] = 0
    signs[level] = 1
    moving_down = True

    while True:
        length = partial[level + 1] + (x[level] - centers[level]) ** 2 * norms[level]
        if length < best_sq:
            if level == 0:
                if any(x):
                    best = x.copy()
                    best_sq = length
                # continue scanning siblings at level 0
                x[0], deltas[0], signs[0] = _next_candidate(
                    x[0], centers[0], deltas[0], signs[0]
                )
            else:
                partial[level] = length
                level -= 1
                centers[level] = -float(
                    np.dot(x[level + 1 :], mu[level + 1 :, level])
                )
                x[level] = round(centers[level])
                deltas[level] = 0
                signs[level] = 1
        else:
            level += 1
            if level == n:
                return best
            x[level], deltas[level], signs[level] = _next_candidate(
                x[level], centers[level], deltas[level], signs[level]
            )


def _next_candidate(
    value: int, center: float, delta: int, sign: int
) -> Tuple[int, int, int]:
    """Zig-zag enumeration around the center: c, c+1, c-1, c+2, ..."""
    delta += 1
    offset = delta if sign > 0 else -delta
    nxt = round(center) + offset
    return int(nxt), delta, -sign


def shortest_vector_with_coefficients(
    basis: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact shortest nonzero lattice vector and its basis coefficients.

    The basis should be LLL-reduced first for performance.  Raises
    :class:`LatticeError` above dimension 30 (exponential search).
    """
    rows = [np.array([int(v) for v in row], dtype=object) for row in np.asarray(basis)]
    n = len(rows)
    if n > 30:
        raise LatticeError(f"enumeration limited to dim <= 30, got {n}")
    mu, norms = _float_gso(rows)
    lengths = [sum(int(v) * int(v) for v in r) for r in rows]
    radius = float(min(lengths))
    coeffs = _enumerate_coefficients(mu, norms, radius * (1 + 1e-9))
    if coeffs is None:
        # the shortest basis row is already optimal
        index = int(np.argmin(lengths))
        unit = np.zeros(n, dtype=np.int64)
        unit[index] = 1
        return rows[index], unit
    vector = np.zeros(len(rows[0]), dtype=object)
    for c, row in zip(coeffs, rows):
        if c:
            vector = vector + int(c) * row
    return vector, coeffs


def shortest_vector(basis: np.ndarray) -> np.ndarray:
    """Exact shortest nonzero lattice vector of an (integer) basis."""
    vector, _ = shortest_vector_with_coefficients(basis)
    return vector
