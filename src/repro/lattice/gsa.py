"""BKZ cost model: root-Hermite factors and the geometric series assumption.

These are the asymptotic tools behind the paper's "bikz" numbers: a
BKZ-beta-reduced basis has root-Hermite factor ``delta_beta`` (Chen's
formula) and, under the GSA, log Gram-Schmidt norms decaying linearly.
The uSVP success condition used by the LWE-with-hints estimator
(see :mod:`repro.hints.estimator`) intersects the GSA profile with the
projected target length.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import LatticeError


def bkz_delta(beta: float) -> float:
    """Root-Hermite factor of BKZ-beta (Chen-Nguyen asymptotic formula).

    ``delta = ((beta/(2 pi e)) (pi beta)^(1/beta))^(1/(2(beta-1)))``

    For tiny block sizes (< 40) the asymptotic formula loses meaning;
    standard practice interpolates toward the LLL value ~1.0219, which
    we approximate by clamping beta at 40.

    >>> round(bkz_delta(382), 5)
    1.00411
    """
    if beta < 2:
        raise LatticeError(f"beta must be >= 2, got {beta}")
    beta = max(float(beta), 40.0)
    return (beta / (2 * math.pi * math.e) * (math.pi * beta) ** (1 / beta)) ** (
        1 / (2 * (beta - 1))
    )


def log_bkz_delta(beta: float) -> float:
    """Natural log of :func:`bkz_delta`."""
    return math.log(bkz_delta(beta))


def gsa_log_profile(dim: int, log_volume: float, beta: float) -> List[float]:
    """GSA prediction of ``log ||b_i*||`` for a BKZ-beta basis.

    The profile is a line with slope ``-2 log(delta)`` whose sum matches
    the lattice volume.

    >>> profile = gsa_log_profile(100, 0.0, 60)
    >>> abs(sum(profile)) < 1e-6
    True
    """
    if dim < 1:
        raise LatticeError("dim must be positive")
    slope = -2.0 * log_bkz_delta(beta)
    # log||b_i*|| = intercept + slope*i with sum = log_volume
    intercept = log_volume / dim - slope * (dim - 1) / 2
    return [intercept + slope * i for i in range(dim)]


def gsa_projected_target_log_length(dim: int, beta: float) -> float:
    """log of ``sqrt(beta/dim) * ||target||`` for a unit-variance target.

    After isotropisation the uSVP target has expected norm ``sqrt(dim)``,
    so its projection onto the last ``beta`` GSO directions has expected
    norm ``sqrt(beta)``.
    """
    if not (1 <= beta <= dim):
        raise LatticeError(f"need 1 <= beta <= dim, got beta={beta}, dim={dim}")
    return 0.5 * math.log(beta)


#: The Gaussian heuristic is unreliable below this block width (the
#: Chen-Nguyen simulator substitutes tabulated HKZ norms there); we
#: simply restrict the simulator to its valid regime.
MIN_SIMULATED_BETA = 30


def simulate_bkz_profile(
    gso_log_norms: List[float], beta: float, tours: int = 20
) -> List[float]:
    """A lightweight Chen-Nguyen-style BKZ simulator.

    Repeatedly flattens each length-``beta`` window toward the Gaussian
    heuristic first length; converges to a GSA-like shape.  Used by the
    ablation bench comparing the closed-form GSA against a simulated
    profile.  Valid for ``beta >= MIN_SIMULATED_BETA`` (the Gaussian
    heuristic misestimates narrower blocks); narrower tail windows are
    left untouched.
    """
    profile = [float(x) for x in gso_log_norms]
    n = len(profile)
    beta = int(beta)
    if beta < MIN_SIMULATED_BETA:
        raise LatticeError(
            f"simulator requires beta >= {MIN_SIMULATED_BETA}, got {beta}"
        )
    for _ in range(tours):
        changed = False
        for start in range(n - 1):
            stop = min(start + beta, n)
            width = stop - start
            if width < MIN_SIMULATED_BETA:
                continue
            block_logvol = sum(profile[start:stop])
            # Gaussian heuristic first length of the block
            gh = _log_gaussian_heuristic(width, block_logvol)
            if gh < profile[start] - 1e-9:
                shortfall = profile[start] - gh
                profile[start] = gh
                # distribute the mass over the remainder of the block
                for i in range(start + 1, stop):
                    profile[i] += shortfall / (width - 1)
                changed = True
        if not changed:
            break
    return profile


def _log_gaussian_heuristic(dim: int, log_volume: float) -> float:
    """log of the Gaussian-heuristic shortest length in the block."""
    return (
        log_volume / dim
        + 0.5 * math.log(dim / (2 * math.pi * math.e))
        + 0.5 * math.log(math.pi * dim) / dim
    )
