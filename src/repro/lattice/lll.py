"""LLL lattice basis reduction (integer rows, floating-point GSO).

Standard Lenstra-Lenstra-Lovasz with incremental Gram-Schmidt updates
(size reduction adjusts one ``mu`` row; a swap uses the classic local
update formulas), sufficient for the toy primal attacks in the examples
and tests (dimensions up to ~100).  Basis rows stay exact Python
integers; only the GSO bookkeeping is floating point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LatticeError


def _float_gso(rows):
    n = len(rows)
    fb = np.array([[float(x) for x in row] for row in rows])
    mu = np.eye(n)
    norms = np.zeros(n)
    ortho = np.zeros_like(fb)
    for i in range(n):
        v = fb[i].copy()
        for j in range(i):
            mu[i, j] = fb[i] @ ortho[j] / norms[j]
            v -= mu[i, j] * ortho[j]
        norms[i] = float(v @ v)
        if norms[i] <= 0:
            raise LatticeError(f"dependent basis row {i}")
        ortho[i] = v
    return mu, norms


def lll_reduce(basis: np.ndarray, delta: float = 0.99) -> np.ndarray:
    """Return an LLL-reduced basis (new integer array; input untouched).

    Raises :class:`LatticeError` on dependent rows or a bad ``delta``.
    """
    if not (0.25 < delta <= 1.0):
        raise LatticeError(f"delta must be in (0.25, 1], got {delta}")
    b = [np.array([int(x) for x in row], dtype=object) for row in np.asarray(basis)]
    n = len(b)
    if n == 1:
        return np.array([list(b[0])], dtype=object)
    mu, norms = _float_gso(b)

    k = 1
    while k < n:
        # size-reduce b_k against b_{k-1} .. b_0
        for j in range(k - 1, -1, -1):
            q = round(mu[k, j])
            if q:
                b[k] = b[k] - q * b[j]
                mu[k, : j + 1] -= q * mu[j, : j + 1]
        if norms[k] >= (delta - mu[k, k - 1] ** 2) * norms[k - 1]:
            k += 1
            continue
        # swap rows k-1 and k with local GSO updates
        b[k - 1], b[k] = b[k], b[k - 1]
        mu_kk1 = mu[k, k - 1]
        new_norm = norms[k] + mu_kk1**2 * norms[k - 1]
        mu[k, k - 1] = mu_kk1 * norms[k - 1] / new_norm
        norms[k] = norms[k - 1] * norms[k] / new_norm
        norms[k - 1] = new_norm
        for j in range(k - 1):
            mu[k - 1, j], mu[k, j] = mu[k, j], mu[k - 1, j]
        for i in range(k + 1, n):
            t = mu[i, k]
            mu[i, k] = mu[i, k - 1] - mu_kk1 * t
            mu[i, k - 1] = t + mu[k, k - 1] * mu[i, k]
        k = max(k - 1, 1)
    return np.array([list(row) for row in b], dtype=object)


def is_size_reduced(basis: np.ndarray, tolerance: float = 0.5001) -> bool:
    """Check ``|mu_ij| <= 1/2`` for all i > j (test helper)."""
    mu, _ = _float_gso([np.array([int(x) for x in row], dtype=object) for row in basis])
    n = len(basis)
    return all(
        abs(mu[i, j]) <= tolerance for i in range(n) for j in range(i)
    )


def shortest_basis_vector(basis: np.ndarray) -> np.ndarray:
    """The shortest nonzero row of a (reduced) basis."""
    best = min(basis, key=lambda row: sum(int(x) * int(x) for x in row))
    return np.array([int(x) for x in best], dtype=object)
