"""Capability-probed compute-backend registry for the numeric hot kernels.

PRs 5-6 pushed the single-core pipeline to the point where numpy
dispatch overhead (~15 C-API calls per vector instruction) and Python
kernel glue are the floor; Intel HEXL makes the case that SEAL-class
workloads get their remaining order of magnitude from *dedicated
kernels*, not better algorithms.  This package is that layer for the
reproduction: the numeric hot kernels — NTT butterflies, negacyclic
pointwise products, leakage expansion, template matching and the lane
engine's dispatch-group selection — are abstracted behind a uniform
:func:`get_backend` / :func:`get_kernel` interface with pluggable
implementations.

Backends
--------
``reference``
    Always present.  It carries *no* kernel overrides: a call site that
    gets ``None`` from :func:`get_kernel` falls through to its existing
    vectorized numpy path, which stays the semantic twin every other
    backend is verified against.
``native``
    C kernels compiled once per machine through ``cffi`` + the system C
    compiler (``-O3 -ffp-contract=off``; the contraction barrier keeps
    float kernels bit-identical to numpy's non-fused arithmetic).  The
    shared object is cached on disk keyed by the C source hash, so
    probes after the first are a plain import and forked pool workers
    inherit the loaded library.
``numba``
    ``@njit`` (nopython, cached) versions of the same kernels, present
    only when numba is importable.  Probing never raises when it is
    absent — the registry silently falls back.

Selection
---------
Resolution is lazy (first :func:`get_backend` call, never at import)
and picks the available backend with the highest priority.  The
``REVEAL_BACKEND`` environment variable or an explicit
:func:`set_backend` call overrides the probe; unknown names raise
:class:`~repro.errors.ParameterError` listing the valid options at
parse time, not as a ``KeyError`` deep in dispatch.

Bit-exactness contract
----------------------
Every kernel declares whether it is bit-exact against the reference
twin.  Exact kernels (integer NTT/pointwise arithmetic, leakage
expansion whose float evaluation order is mirrored operation for
operation, lane selection) are drop-in and enabled whenever a compiled
backend probes available.  Non-exact kernels (the template Mahalanobis
form, whose reduction order necessarily differs from ``np.einsum``)
change last bits and are enabled only when the backend was *explicitly*
selected — via ``REVEAL_BACKEND``, ``repro.reproduce --backend`` or
:func:`set_backend` — so default outputs stay bit-identical across
machines with and without a compiler (the golden fixtures depend on
that).  Either way ``repro.verify`` registers one oracle per backend
kernel against the reference (bit-exact or a declared ``Tolerance``),
so the differential harness enforces the contract automatically.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ParameterError

#: Canonical backend names, in the order reported to users.
BACKEND_NAMES = ("reference", "native", "numba")


@dataclass(frozen=True)
class Kernel:
    """One backend implementation of a named hot kernel.

    ``exact`` declares the verification contract: ``True`` means the
    kernel's output is bit-identical to the reference twin (enforced by
    an exact oracle); ``False`` means it is numerically equivalent
    within a declared :class:`repro.verify.Tolerance` and is therefore
    only used when the backend was explicitly selected.
    """

    fn: Callable
    exact: bool = True


@dataclass
class Backend:
    """A named set of kernel implementations plus probe metadata."""

    name: str
    version: str
    priority: int
    kernels: Dict[str, Kernel] = field(default_factory=dict)

    @property
    def ident(self) -> str:
        """Stable ``name-version`` identifier for cache keys/reports."""
        return f"{self.name}-{self.version}"

    def kernel_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.kernels))


# ----------------------------------------------------------------------
# Probing
# ----------------------------------------------------------------------
def _build_reference() -> Backend:
    import numpy

    # No kernel overrides: call sites keep their inline numpy hot paths.
    return Backend(name="reference", version=numpy.__version__, priority=0)


def _build_native() -> Backend:
    from repro.backends import native

    return native.build_backend()


def _build_numba() -> Backend:
    from repro.backends import numba_backend

    return numba_backend.build_backend()


_FACTORIES: Dict[str, Callable[[], Backend]] = {
    "reference": _build_reference,
    "native": _build_native,
    "numba": _build_numba,
}

_LOCK = threading.Lock()
_PROBED: Dict[str, Optional[Backend]] = {}
_PROBE_ERRORS: Dict[str, str] = {}
_ACTIVE: Optional[Backend] = None
_EXPLICIT = False


def resolve_backend(name: Optional[str] = None) -> Optional[str]:
    """Validate a backend request at parse time.

    ``None`` falls back to the ``REVEAL_BACKEND`` environment variable;
    an empty/unset variable returns ``None`` (meaning: auto-select by
    capability probe).  Unknown names raise
    :class:`~repro.errors.ParameterError` listing the valid options.
    """
    source = "backend"
    if name is None:
        name = os.environ.get("REVEAL_BACKEND", "").strip() or None
        source = "REVEAL_BACKEND"
        if name is None:
            return None
    name = str(name).strip().lower()
    if name not in BACKEND_NAMES:
        raise ParameterError(
            f"unknown {source} {name!r} (choose from "
            f"{', '.join(BACKEND_NAMES)})"
        )
    return name


def probe_backend(name: str) -> Optional[Backend]:
    """Build (or fetch the cached) backend; ``None`` if unavailable.

    A probe failure is cached with its reason and never raises: a
    missing compiler or an absent numba must degrade to the reference
    path, not break imports.
    """
    name = resolve_backend(name)
    with _LOCK:
        if name in _PROBED:
            return _PROBED[name]
    try:
        backend = _FACTORIES[name]()
    except Exception as exc:  # noqa: BLE001 - probe must never propagate
        with _LOCK:
            _PROBED[name] = None
            _PROBE_ERRORS[name] = f"{type(exc).__name__}: {exc}"
        return None
    with _LOCK:
        _PROBED[name] = backend
    return backend


def probe_error(name: str) -> Optional[str]:
    """Why the last probe of ``name`` failed (``None`` if it did not)."""
    return _PROBE_ERRORS.get(resolve_backend(name))


def available_backends() -> Tuple[str, ...]:
    """Names of backends whose probe succeeds, in canonical order."""
    return tuple(n for n in BACKEND_NAMES if probe_backend(n) is not None)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def get_backend() -> Backend:
    """The active backend, resolving lazily on first use.

    Resolution order: an explicit :func:`set_backend` call, then the
    ``REVEAL_BACKEND`` environment variable (validated; a requested but
    unavailable backend raises instead of silently degrading), then the
    highest-priority backend whose capability probe succeeds.
    """
    global _ACTIVE, _EXPLICIT
    if _ACTIVE is not None:
        return _ACTIVE
    requested = resolve_backend(None)
    if requested is not None:
        return set_backend(requested)
    best = probe_backend("reference")
    for name in BACKEND_NAMES:
        backend = probe_backend(name)
        if backend is not None and backend.priority > best.priority:
            best = backend
    with _LOCK:
        if _ACTIVE is None:
            _ACTIVE = best
            _EXPLICIT = False
    return _ACTIVE


def set_backend(name: str) -> Backend:
    """Explicitly select a backend (CLI ``--backend``, tests).

    Unlike auto-selection this raises when the requested backend cannot
    be built, and it arms the backend's non-exact kernels (see the
    module docstring's bit-exactness contract).
    """
    global _ACTIVE, _EXPLICIT
    validated = resolve_backend(name)
    backend = probe_backend(validated)
    if backend is None:
        reason = _PROBE_ERRORS.get(validated, "probe failed")
        raise ParameterError(
            f"backend {validated!r} is unavailable on this host "
            f"({reason}); available: {', '.join(available_backends())}"
        )
    with _LOCK:
        _ACTIVE = backend
        _EXPLICIT = True
    return backend


@contextmanager
def use_backend(name: str) -> Iterator[Backend]:
    """Temporarily select ``name`` (oracles, differential tests)."""
    global _ACTIVE, _EXPLICIT
    with _LOCK:
        saved = (_ACTIVE, _EXPLICIT)
    backend = set_backend(name)
    try:
        yield backend
    finally:
        with _LOCK:
            _ACTIVE, _EXPLICIT = saved


def reset_backend() -> None:
    """Forget the active selection (tests); probes stay cached."""
    global _ACTIVE, _EXPLICIT
    with _LOCK:
        _ACTIVE = None
        _EXPLICIT = False


def backend_id() -> str:
    """``name-version`` of the active backend (cache keys, reports)."""
    return get_backend().ident


def get_kernel(name: str) -> Optional[Callable]:
    """The active backend's implementation of ``name``, or ``None``.

    ``None`` means: run the call site's inline numpy path (the
    reference twin).  Non-exact kernels are withheld unless the backend
    was explicitly selected, keeping auto-probed defaults bit-identical
    to a reference-only install.
    """
    backend = get_backend()
    kernel = backend.kernels.get(name)
    if kernel is None:
        return None
    if not kernel.exact and not _EXPLICIT:
        return None
    return kernel.fn


def kernel_exactness(backend_name: str) -> Dict[str, bool]:
    """Kernel name -> declared exactness for one backend (oracles)."""
    backend = probe_backend(backend_name)
    if backend is None:
        return {}
    return {name: k.exact for name, k in backend.kernels.items()}
