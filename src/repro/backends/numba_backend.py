"""Numba backend: ``@njit`` (nopython, cached) hot-kernel twins.

Only importable where numba is installed — the registry's capability
probe swallows the ``ImportError`` and falls back, which is the normal
state of this container (the dedicated CI job installs numba and runs
the ``backend.numba.*`` oracle sweep).  The kernels transliterate the
scalar reference semantics directly; numba's integer ``%`` follows
Python (floored) semantics and its float codegen does not contract
into FMAs without ``fastmath``, so every kernel except the template
quadratic form is bit-exact against the numpy twin, same as the native
C backend.  ``parallel=True``/``prange`` is applied only to the
template kernel's independent slice rows — the other kernels run
inside process-pool workers where nested threading oversubscribes the
host.
"""

from __future__ import annotations

import numpy as np

from repro.backends import Backend, Kernel


def build_backend() -> Backend:
    import numba
    from numba import njit, prange

    @njit(cache=True)
    def _popcount32(v):
        x = np.uint32(v)
        x = x - ((x >> np.uint32(1)) & np.uint32(0x55555555))
        x = (x & np.uint32(0x33333333)) + (
            (x >> np.uint32(2)) & np.uint32(0x33333333)
        )
        x = (x + (x >> np.uint32(4))) & np.uint32(0x0F0F0F0F)
        return np.int64((x * np.uint32(0x01010101)) >> np.uint32(24))

    @njit(cache=True)
    def _ntt_forward(a, w, q):
        n = a.shape[0]
        for j in range(n):
            a[j] = a[j] % q
        t = n
        m = 1
        while m < n:
            t //= 2
            for i in range(m):
                wi = w[m + i]
                j1 = 2 * i * t
                for j in range(j1, j1 + t):
                    lo = a[j]
                    hi = a[j + t]
                    prod = (hi * wi) % q
                    a[j] = (lo + prod) % q
                    a[j + t] = (lo - prod) % q
            m *= 2
        return a

    @njit(cache=True)
    def _ntt_inverse(a, w, q, n_inv):
        n = a.shape[0]
        for j in range(n):
            a[j] = a[j] % q
        t = 1
        m = n
        while m > 1:
            h = m // 2
            j1 = 0
            for i in range(h):
                wi = w[h + i]
                for j in range(j1, j1 + t):
                    lo = a[j]
                    hi = a[j + t]
                    a[j] = (lo + hi) % q
                    a[j + t] = ((lo - hi) * wi) % q
                j1 += 2 * t
            t *= 2
            m = h
        for j in range(n):
            a[j] = (a[j] * n_inv) % q
        return a

    @njit(cache=True)
    def _pointwise_mulmod(a, b, q):
        out = np.empty_like(a)
        for j in range(a.shape[0]):
            out[j] = ((a[j] % q) * (b[j] % q)) % q
        return out

    @njit(cache=True)
    def _expand_events(op, word, rs1, rs2, result, old_rd, address,
                       prev, starts, samples, wd, wt, wf, we, eoff, base):
        half_wd = 0.5 * wd
        half_we = we * 0.5
        eng_base = base + eoff
        for e in range(op.shape[0]):
            s = starts[e]
            samples[s] = base + wf * float(
                _popcount32(word[e]) + _popcount32(word[e] ^ prev[e])
            )
            operand_v = base + half_wd * float(
                _popcount32(rs1[e]) + _popcount32(rs2[e])
            )
            writeback_v = (
                base + wd * float(_popcount32(result[e]))
            ) + wt * float(_popcount32(result[e] ^ old_rd[e]))
            cls = op[e]
            if cls == 0:  # OP_ALU
                samples[s + 1] = operand_v
                samples[s + 2] = writeback_v
            elif cls == 1:  # OP_MUL
                samples[s + 1] = operand_v
                a32 = np.uint32(rs1[e])
                b32 = np.uint32(rs2[e])
                acc = np.uint32(0)
                for i in range(32):
                    if (b32 >> np.uint32(i)) & np.uint32(1):
                        acc = acc + np.uint32(
                            np.uint64(a32) << np.uint64(i)
                        )
                    samples[s + 2 + i] = eng_base + we * float(
                        _popcount32(acc)
                    )
                samples[s + 34] = writeback_v
            elif cls == 2:  # OP_DIV
                samples[s + 1] = operand_v
                dividend = np.uint64(rs1[e])
                divisor = np.uint64(rs2[e])
                for i in range(32):
                    shifted = dividend >> np.uint64(31 - i)
                    if divisor == np.uint64(0):
                        quo = np.uint64(0)
                        rem = shifted
                    else:
                        quo = shifted // divisor
                        rem = shifted % divisor
                    samples[s + 2 + i] = eng_base + half_we * float(
                        _popcount32(rem) + _popcount32(quo)
                    )
                samples[s + 34] = writeback_v
            elif cls == 3:  # OP_LOAD
                samples[s + 1] = base + half_wd * float(
                    _popcount32(address[e])
                )
                samples[s + 2] = base + wd * float(_popcount32(result[e]))
                samples[s + 3] = writeback_v
            elif cls == 4:  # OP_STORE
                samples[s + 1] = base + half_wd * float(
                    _popcount32(address[e])
                )
                samples[s + 2] = base + wd * float(_popcount32(result[e]))
                samples[s + 3] = base + half_wd * float(
                    _popcount32(result[e])
                )
            elif cls == 5:  # OP_BRANCH_NOT_TAKEN
                samples[s + 1] = operand_v
            elif cls == 6:  # OP_BRANCH_TAKEN
                samples[s + 1] = operand_v
                samples[s + 2] = base + wf * float(_popcount32(result[e]))
            elif cls == 7:  # OP_JUMP
                samples[s + 1] = base + wf * float(_popcount32(result[e]))
                samples[s + 2] = base + wt * float(
                    _popcount32(result[e] ^ old_rd[e])
                )
            # OP_SYSTEM: fetch cycle only

    @njit(cache=True)
    def _lane_select(pcs, wraps, alive, group):
        best_key = np.int64(0)
        pc = np.int64(-1)
        found = False
        for i in range(pcs.shape[0]):
            if not alive[i]:
                continue
            key = (wraps[i] << 32) + pcs[i]
            if not found or key < best_key:
                best_key = key
                pc = pcs[i]
                found = True
        if not found:
            return np.int64(-1), np.int64(0)
        count = 0
        for i in range(pcs.shape[0]):
            if alive[i] and pcs[i] == pc:
                group[count] = i
                count += 1
        return pc, np.int64(count)

    @njit(cache=True, parallel=True)
    def _template_quad(x, means, prec_stack, out):
        n, p = x.shape
        c = means.shape[0]
        for i in prange(n):
            for j in range(c):
                prec = prec_stack[j]
                quad = 0.0
                for a in range(p):
                    inner = 0.0
                    for b in range(p):
                        inner += prec[a, b] * (x[i, b] - means[j, b])
                    quad += (x[i, a] - means[j, a]) * inner
                out[i, j] = quad

    def ntt_forward(ctx, a: np.ndarray) -> np.ndarray:
        return _ntt_forward(a, ctx._root_powers, ctx.modulus.value)

    def ntt_inverse(ctx, a: np.ndarray) -> np.ndarray:
        return _ntt_inverse(
            a, ctx._inv_root_powers, ctx.modulus.value, int(ctx.n_inv)
        )

    def pointwise_mulmod(a, b, q):
        return _pointwise_mulmod(
            np.ascontiguousarray(a, dtype=np.int64),
            np.ascontiguousarray(b, dtype=np.int64),
            q,
        )

    def expand_events(cols, prev, starts, samples, weights) -> None:
        wd, wt, wf, we, eoff, base = weights
        rows = [np.ascontiguousarray(cols[i]) for i in range(7)]
        _expand_events(
            *rows, np.ascontiguousarray(prev),
            np.ascontiguousarray(starts), samples,
            wd, wt, wf, we, eoff, base,
        )

    def lane_select(pcs, wraps, alive):
        group = np.empty(pcs.shape[0], dtype=np.int64)
        pc, count = _lane_select(pcs, wraps, alive, group)
        if count == 0:
            return -1, None
        return int(pc), group[:count]

    def template_quad(x, means, precision, prec_stack) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float64)
        means = np.ascontiguousarray(means, dtype=np.float64)
        if prec_stack is None:
            stack = np.broadcast_to(
                precision, (means.shape[0],) + precision.shape
            )
            stack = np.ascontiguousarray(stack)
        else:
            stack = np.ascontiguousarray(prec_stack, dtype=np.float64)
        out = np.empty((x.shape[0], means.shape[0]), dtype=np.float64)
        _template_quad(x, means, stack, out)
        return out

    return Backend(
        name="numba",
        version=numba.__version__,
        priority=20,
        kernels={
            "ntt_forward": Kernel(ntt_forward),
            "ntt_inverse": Kernel(ntt_inverse),
            "pointwise_mulmod": Kernel(pointwise_mulmod),
            "expand_events": Kernel(expand_events),
            "lane_select": Kernel(lane_select),
            "template_quad": Kernel(template_quad, exact=False),
        },
    )
