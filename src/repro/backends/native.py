"""Native C backend: cffi-compiled kernels for the numeric hot paths.

The kernels below are C transliterations of the vectorized numpy twins
with HEXL-style Shoup modular multiplication in the NTT butterflies
(one precomputed ``floor(w * 2**64 / q)`` per twiddle turns every
``% q`` into a multiply-high and a conditional subtract).  Float
kernels mirror the numpy expression tree *operation for operation* —
same association, same order — and the module is compiled with
``-ffp-contract=off`` so the compiler cannot fuse ``a*b+c`` into an
FMA; together that makes `expand_events` bit-identical to
``LeakageModel._expand_core`` (enforced by the ``backend.native.*``
oracles).  The template Mahalanobis kernel is the one declared
*non-exact* kernel: its per-row reduction order necessarily differs
from ``np.einsum``'s, so it carries a ``Tolerance`` oracle instead and
only runs when the backend was explicitly selected.

Compilation happens once per machine: the shared object is built into
``$REVEAL_NATIVE_CACHE`` (default ``~/.cache/reveal-native``) under a
module name keyed by the SHA-256 of the C source, so later probes are
a plain extension import and forked pool workers inherit the loaded
library.  Any build failure is reported to the registry as an
unavailable backend — never an import error.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shutil
import sysconfig
import tempfile
from typing import Optional

import numpy as np

from repro.backends import Backend, Kernel
from repro.riscv import cycles as cy
from repro.riscv.cpu import ExecutionEvent

_EV_FIELDS = len(ExecutionEvent._fields)

_CDEF = """
void reveal_ntt_forward(int64_t *a, int64_t n, const uint64_t *w,
                        const uint64_t *ws, uint64_t q);
void reveal_ntt_inverse(int64_t *a, int64_t n, const uint64_t *w,
                        const uint64_t *ws, uint64_t q,
                        uint64_t n_inv, uint64_t n_inv_s);
void reveal_pointwise_mulmod(const int64_t *a, const int64_t *b,
                             int64_t *out, int64_t n, uint64_t q);
void reveal_expand_events(int64_t n, const int64_t *op,
                          const int64_t *word, const int64_t *rs1,
                          const int64_t *rs2, const int64_t *result,
                          const int64_t *old_rd, const int64_t *address,
                          const int64_t *prev, const int64_t *starts,
                          double *samples, double wd, double wt,
                          double wf, double we, double eoff, double base);
void reveal_expand_block(int64_t count, const int64_t *tpl,
                         const int32_t *gidx, const int64_t *offs,
                         int64_t g, const int64_t *dest0,
                         const int64_t *prev, const int64_t *vals,
                         double *out, uint8_t *mask, double wd,
                         double wt, double wf, double we, double eoff,
                         double base);
int64_t reveal_lane_select(const int64_t *pcs, const int64_t *wraps,
                           const uint8_t *alive, int64_t n,
                           int64_t *group, int64_t *pc_out);
void reveal_template_quad_pooled(const double *x, const double *means,
                                 const double *prec, int64_t n,
                                 int64_t c, int64_t p, double *out);
void reveal_template_quad_perclass(const double *x, const double *means,
                                   const double *prec_stack, int64_t n,
                                   int64_t c, int64_t p, double *out);
"""

# The op-class ids are spliced in from repro.riscv.cycles at build time
# (@TOKENS@ below), so the source hash — and therefore the cached
# module name — changes if the event encoding ever does.
_SOURCE_TEMPLATE = r"""
#include <stdint.h>

static inline int hw32(int64_t v) {
    return __builtin_popcountll((uint64_t)v);
}

/* Shoup modular multiplication: ws = floor(w * 2^64 / q), q < 2^63.
   Returns (x * w) mod q with one high multiply and one conditional
   subtract instead of a hardware division per butterfly. */
static inline uint64_t mulmod_shoup(uint64_t x, uint64_t w, uint64_t ws,
                                    uint64_t q) {
    uint64_t hi = (uint64_t)(((__uint128_t)ws * x) >> 64);
    uint64_t r = w * x - hi * q;
    return r >= q ? r - q : r;
}

/* Python %% semantics (result in [0, q)) for possibly-negative input. */
static inline uint64_t reduce_once(int64_t v, uint64_t q) {
    int64_t r = v % (int64_t)q;
    return (uint64_t)(r < 0 ? r + (int64_t)q : r);
}

void reveal_ntt_forward(int64_t *a, int64_t n, const uint64_t *w,
                        const uint64_t *ws, uint64_t q) {
    for (int64_t j = 0; j < n; j++)
        a[j] = (int64_t)reduce_once(a[j], q);
    int64_t t = n;
    for (int64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (int64_t i = 0; i < m; i++) {
            uint64_t wi = w[m + i], wsi = ws[m + i];
            int64_t j1 = 2 * i * t;
            for (int64_t j = j1; j < j1 + t; j++) {
                uint64_t lo = (uint64_t)a[j];
                uint64_t hi = (uint64_t)a[j + t];
                uint64_t prod = mulmod_shoup(hi, wi, wsi, q);
                uint64_t lo_new = lo + prod;
                if (lo_new >= q) lo_new -= q;
                uint64_t hi_new = lo + q - prod;
                if (hi_new >= q) hi_new -= q;
                a[j] = (int64_t)lo_new;
                a[j + t] = (int64_t)hi_new;
            }
        }
    }
}

void reveal_ntt_inverse(int64_t *a, int64_t n, const uint64_t *w,
                        const uint64_t *ws, uint64_t q,
                        uint64_t n_inv, uint64_t n_inv_s) {
    for (int64_t j = 0; j < n; j++)
        a[j] = (int64_t)reduce_once(a[j], q);
    int64_t t = 1;
    for (int64_t m = n; m > 1; m >>= 1) {
        int64_t h = m >> 1;
        int64_t j1 = 0;
        for (int64_t i = 0; i < h; i++) {
            uint64_t wi = w[h + i], wsi = ws[h + i];
            for (int64_t j = j1; j < j1 + t; j++) {
                uint64_t lo = (uint64_t)a[j];
                uint64_t hi = (uint64_t)a[j + t];
                uint64_t s = lo + hi;
                if (s >= q) s -= q;
                uint64_t d = lo + q - hi;
                if (d >= q) d -= q;
                a[j] = (int64_t)s;
                a[j + t] = (int64_t)mulmod_shoup(d, wi, wsi, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (int64_t j = 0; j < n; j++)
        a[j] = (int64_t)mulmod_shoup((uint64_t)a[j], n_inv, n_inv_s, q);
}

void reveal_pointwise_mulmod(const int64_t *a, const int64_t *b,
                             int64_t *out, int64_t n, uint64_t q) {
    for (int64_t j = 0; j < n; j++) {
        uint64_t av = reduce_once(a[j], q), bv = reduce_once(b[j], q);
        out[j] = (int64_t)((av * bv) % q);
    }
}

/* Expand ONE event at s: every defined cycle of its op class, padding
   cycles keep the prefilled baseline.  Expression trees mirror
   LeakageModel._expand_core exactly — see that method for the
   cycle-layout rationale.  half_wd/half_we/eng_base are the hoisted
   (0.5*wd, we*0.5, base+eoff) products shared across events. */
static inline void expand_one(int64_t op, int64_t word, int64_t prevw,
                              int64_t rs1, int64_t rs2, int64_t result,
                              int64_t old_rd, int64_t address, double *s,
                              double wd, double half_wd, double wt,
                              double wf, double we, double half_we,
                              double eng_base, double base) {
    s[0] = base + wf * (double)(hw32(word) + hw32(word ^ prevw));
    double operand_v = base + half_wd * (double)(hw32(rs1) + hw32(rs2));
    double writeback_v = (base + wd * (double)hw32(result)) +
                         wt * (double)hw32(result ^ old_rd);
    switch ((int)op) {
    case @OP_ALU@:
        s[1] = operand_v;
        s[2] = writeback_v;
        break;
    case @OP_MUL@: {
        s[1] = operand_v;
        uint32_t a = (uint32_t)rs1, b = (uint32_t)rs2;
        uint32_t acc = 0;
        for (int i = 0; i < 32; i++) {
            if ((b >> i) & 1u)
                acc += (uint32_t)((uint64_t)a << i);
            s[2 + i] = eng_base + we * (double)__builtin_popcount(acc);
        }
        s[34] = writeback_v;
        break;
    }
    case @OP_DIV@: {
        s[1] = operand_v;
        uint64_t dividend = (uint64_t)rs1;
        uint64_t divisor = (uint64_t)rs2;
        for (int i = 0; i < 32; i++) {
            uint64_t shifted = dividend >> (31 - i);
            uint64_t quo, rem;
            if (divisor == 0) { quo = 0; rem = shifted; }
            else { quo = shifted / divisor; rem = shifted % divisor; }
            s[2 + i] = eng_base +
                       half_we * (double)(__builtin_popcountll(rem) +
                                          __builtin_popcountll(quo));
        }
        s[34] = writeback_v;
        break;
    }
    case @OP_LOAD@:
        s[1] = base + half_wd * (double)hw32(address);
        s[2] = base + wd * (double)hw32(result);
        s[3] = writeback_v;
        break;
    case @OP_STORE@:
        s[1] = base + half_wd * (double)hw32(address);
        s[2] = base + wd * (double)hw32(result);
        s[3] = base + half_wd * (double)hw32(result);
        break;
    case @OP_BRANCH_NOT_TAKEN@:
        s[1] = operand_v;
        break;
    case @OP_BRANCH_TAKEN@:
        s[1] = operand_v;
        s[2] = base + wf * (double)hw32(result);
        break;
    case @OP_JUMP@:
        s[1] = base + wf * (double)hw32(result);
        s[2] = base + wt * (double)hw32(result ^ old_rd);
        break;
    default: /* OP_SYSTEM: fetch cycle only */
        break;
    }
}

/* One pass over a whole event log (the row-major expand path). */
void reveal_expand_events(int64_t n, const int64_t *op,
                          const int64_t *word, const int64_t *rs1,
                          const int64_t *rs2, const int64_t *result,
                          const int64_t *old_rd, const int64_t *address,
                          const int64_t *prev, const int64_t *starts,
                          double *samples, double wd, double wt,
                          double wf, double we, double eoff, double base) {
    double half_wd = 0.5 * wd;
    double half_we = we * 0.5;
    double eng_base = base + eoff;
    for (int64_t e = 0; e < n; e++)
        expand_one(op[e], word[e], prev[e], rs1[e], rs2[e], result[e],
                   old_rd[e], address[e], samples + starts[e], wd,
                   half_wd, wt, wf, we, half_we, eng_base, base);
}

/* One dispatch group of a lane block: g lanes x count events, fields
   resolved per event from the static template (gidx < 0) or gathered
   from the recorded dynamic value matrix vals[gidx][lane].  Replaces
   the generated numpy block emitters of expand_arena: same per-event
   expansion as above, scattered at dest0[lane] + offs[event], with the
   event-start mask filled in the same pass.  The fetched-word history
   chains through the block (prev[lane] seeds event 0). */
void reveal_expand_block(int64_t count, const int64_t *tpl,
                         const int32_t *gidx, const int64_t *offs,
                         int64_t g, const int64_t *dest0,
                         const int64_t *prev, const int64_t *vals,
                         double *out, uint8_t *mask, double wd,
                         double wt, double wf, double we, double eoff,
                         double base) {
    double half_wd = 0.5 * wd;
    double half_we = we * 0.5;
    double eng_base = base + eoff;
    for (int64_t i = 0; i < g; i++) {
        int64_t lane0 = dest0[i];
        int64_t pw = prev[i];
        for (int64_t j = 0; j < count; j++) {
            const int64_t *t = tpl + j * @EV_FIELDS@;
            const int32_t *gx = gidx + j * @EV_FIELDS@;
            int64_t f[7];
            for (int r = 0; r < 7; r++)
                f[r] = gx[r] >= 0 ? vals[(int64_t)gx[r] * g + i] : t[r];
            int64_t s0 = lane0 + offs[j];
            mask[s0] = 1;
            expand_one(f[0], f[1], pw, f[2], f[3], f[4], f[5], f[6],
                       out + s0, wd, half_wd, wt, wf, we, half_we,
                       eng_base, base);
            pw = f[1];
        }
    }
}

/* Warp scheduling: lead lane by min (wraps << 32) + pc over live
   lanes (first minimum, like np.argmin), group = live lanes at the
   lead's pc, ascending.  Returns the group size; pc_out = -1 and 0
   when no lane is alive. */
int64_t reveal_lane_select(const int64_t *pcs, const int64_t *wraps,
                           const uint8_t *alive, int64_t n,
                           int64_t *group, int64_t *pc_out) {
    int64_t best_key = 0, pc = -1;
    int found = 0;
    for (int64_t i = 0; i < n; i++) {
        if (!alive[i]) continue;
        int64_t key = (wraps[i] << 32) + pcs[i];
        if (!found || key < best_key) {
            best_key = key;
            pc = pcs[i];
            found = 1;
        }
    }
    *pc_out = pc;
    if (!found) return 0;
    int64_t count = 0;
    for (int64_t i = 0; i < n; i++)
        if (alive[i] && pcs[i] == pc) group[count++] = i;
    return count;
}

/* Mahalanobis quadratic forms d P d^T for every (slice, class) pair.
   Reduction order differs from np.einsum — declared non-exact. */
void reveal_template_quad_pooled(const double *x, const double *means,
                                 const double *prec, int64_t n,
                                 int64_t c, int64_t p, double *out) {
    for (int64_t i = 0; i < n; i++) {
        const double *xi = x + i * p;
        for (int64_t j = 0; j < c; j++) {
            const double *mj = means + j * p;
            double quad = 0.0;
            for (int64_t a = 0; a < p; a++) {
                const double *row = prec + a * p;
                double inner = 0.0;
                for (int64_t b = 0; b < p; b++)
                    inner += row[b] * (xi[b] - mj[b]);
                quad += (xi[a] - mj[a]) * inner;
            }
            out[i * c + j] = quad;
        }
    }
}

void reveal_template_quad_perclass(const double *x, const double *means,
                                   const double *prec_stack, int64_t n,
                                   int64_t c, int64_t p, double *out) {
    for (int64_t i = 0; i < n; i++) {
        const double *xi = x + i * p;
        for (int64_t j = 0; j < c; j++) {
            const double *mj = means + j * p;
            const double *prec = prec_stack + j * p * p;
            double quad = 0.0;
            for (int64_t a = 0; a < p; a++) {
                const double *row = prec + a * p;
                double inner = 0.0;
                for (int64_t b = 0; b < p; b++)
                    inner += row[b] * (xi[b] - mj[b]);
                quad += (xi[a] - mj[a]) * inner;
            }
            out[i * c + j] = quad;
        }
    }
}
"""


def _c_source() -> str:
    source = _SOURCE_TEMPLATE
    for name in (
        "OP_ALU", "OP_MUL", "OP_DIV", "OP_LOAD", "OP_STORE",
        "OP_BRANCH_NOT_TAKEN", "OP_BRANCH_TAKEN", "OP_JUMP",
    ):
        source = source.replace(f"@{name}@", str(getattr(cy, name)))
    return source.replace("@EV_FIELDS@", str(_EV_FIELDS))


def _cache_dir() -> str:
    configured = os.environ.get("REVEAL_NATIVE_CACHE", "").strip()
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "reveal-native"
    )


def _load_extension(modname: str, path: str):
    loader = importlib.machinery.ExtensionFileLoader(modname, path)
    spec = importlib.util.spec_from_loader(modname, loader, origin=path)
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


def _compile_and_load():
    """Build (or reuse) the extension; returns ``(module, digest)``."""
    source = _c_source()
    digest = hashlib.sha256((_CDEF + source).encode()).hexdigest()[:12]
    modname = f"_reveal_native_{digest}"
    cache_dir = _cache_dir()
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    target = os.path.join(cache_dir, modname + suffix)
    if os.path.exists(target):
        return _load_extension(modname, target), digest

    import cffi  # capability probe: missing cffi -> backend unavailable

    os.makedirs(cache_dir, exist_ok=True)
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    # -ffp-contract=off: FMA contraction would change float results and
    # break the bit-exactness contract of the expand kernel.
    ffi.set_source(
        modname, source,
        extra_compile_args=["-O3", "-ffp-contract=off"],
    )
    # Build in a private temp dir, then publish atomically: concurrent
    # first-use from several processes must not see half-written files.
    build_dir = tempfile.mkdtemp(prefix="build-", dir=cache_dir)
    try:
        built = ffi.compile(tmpdir=build_dir)
        os.replace(built, target)
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)
    return _load_extension(modname, target), digest


def _shoup_table(powers: np.ndarray, q: int) -> np.ndarray:
    """``floor(w * 2**64 / q)`` per twiddle, as uint64."""
    return np.array(
        [(int(w) << 64) // q for w in powers.tolist()], dtype=np.uint64
    )


def build_backend() -> Backend:
    module, digest = _compile_and_load()
    lib = module.lib
    ffi = module.ffi

    def i64(arr: np.ndarray):
        return ffi.cast("int64_t *", ffi.from_buffer(arr))

    def u64(arr: np.ndarray):
        return ffi.cast("uint64_t *", ffi.from_buffer(arr))

    def f64(arr: np.ndarray):
        return ffi.cast("double *", ffi.from_buffer(arr))

    def _ntt_tables(ctx):
        # Shoup companions are derived lazily per context and cached on
        # it, so they ride the existing get_ntt_context LRU for free.
        tables = getattr(ctx, "_native_ntt_tables", None)
        if tables is None:
            q = ctx.modulus.value
            fwd = np.ascontiguousarray(ctx._root_powers.astype(np.uint64))
            inv = np.ascontiguousarray(
                ctx._inv_root_powers.astype(np.uint64)
            )
            n_inv = int(ctx.n_inv)
            tables = (
                fwd, _shoup_table(fwd, q), inv, _shoup_table(inv, q),
                n_inv, (n_inv << 64) // q,
            )
            ctx._native_ntt_tables = tables
        return tables

    def ntt_forward(ctx, a: np.ndarray) -> np.ndarray:
        fwd, fwd_s, _inv, _inv_s, _n_inv, _n_inv_s = _ntt_tables(ctx)
        lib.reveal_ntt_forward(
            i64(a), ctx.n, u64(fwd), u64(fwd_s), ctx.modulus.value
        )
        return a

    def ntt_inverse(ctx, a: np.ndarray) -> np.ndarray:
        _fwd, _fwd_s, inv, inv_s, n_inv, n_inv_s = _ntt_tables(ctx)
        lib.reveal_ntt_inverse(
            i64(a), ctx.n, u64(inv), u64(inv_s), ctx.modulus.value,
            n_inv, n_inv_s,
        )
        return a

    def pointwise_mulmod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        out = np.empty_like(a)
        lib.reveal_pointwise_mulmod(i64(a), i64(b), i64(out), a.size, q)
        return out

    def expand_events(cols, prev, starts, samples, weights) -> None:
        wd, wt, wf, we, eoff, base = weights
        rows = [np.ascontiguousarray(cols[i]) for i in range(7)]
        prev = np.ascontiguousarray(prev)
        starts_c = np.ascontiguousarray(starts)
        lib.reveal_expand_events(
            cols.shape[1], *(i64(r) for r in rows), i64(prev),
            i64(starts_c), f64(samples), wd, wt, wf, we, eoff, base,
        )

    # Per-block expansion metadata, cached alongside the numpy emitters
    # (the key shape cannot collide with their 6-float weight tuples).
    _META_KEY = ("__native_block_meta__",)

    def _block_meta(block):
        meta = block.emitters.get(_META_KEY, False)
        if meta is False:
            count = block.length
            tpl = np.ascontiguousarray(block.template)
            gidx = np.full(count * _EV_FIELDS, -1, dtype=np.int32)
            for cell, k in zip(block.cells, block.gather):
                gidx[cell] = k
            # Per-event first-cycle offsets.  Only a terminal branch may
            # carry a dynamic op class (same invariant the emitter
            # compiler enforces); any other dynamic op means the block
            # layout is not static, so decline and let the caller fall
            # back to the generated emitter's error path.
            meta = None
            offs = np.zeros(count, dtype=np.int64)
            off = 0
            for j in range(count):
                offs[j] = off
                if gidx[j * _EV_FIELDS] >= 0:
                    if j != count - 1:
                        break
                else:
                    off += cy.CYCLES[int(tpl[j * _EV_FIELDS])]
            else:
                meta = (tpl, gidx, offs, count, len(block.uniq_names))
            block.emitters[_META_KEY] = meta
        return meta

    def expand_block(block, dest0, prev, vals, out, mask, weights) -> bool:
        meta = _block_meta(block)
        if meta is None:
            return False
        tpl, gidx, offs, count, nvals = meta
        wd, wt, wf, we, eoff, base = weights
        dest0 = np.ascontiguousarray(dest0, dtype=np.int64)
        prev = np.ascontiguousarray(prev, dtype=np.int64)
        g = dest0.shape[0]
        vmat = np.empty((max(nvals, 1), g), dtype=np.int64)
        for k in range(nvals):
            vmat[k] = vals[k]
        lib.reveal_expand_block(
            count, i64(tpl), ffi.cast("int32_t *", ffi.from_buffer(gidx)),
            i64(offs), g, i64(dest0), i64(prev), i64(vmat), f64(out),
            ffi.cast("uint8_t *", ffi.from_buffer(mask)),
            wd, wt, wf, we, eoff, base,
        )
        return True

    def lane_select(pcs, wraps, alive):
        group = np.empty(pcs.shape[0], dtype=np.int64)
        pc_out = ffi.new("int64_t *")
        count = lib.reveal_lane_select(
            i64(pcs), i64(wraps),
            ffi.cast("uint8_t *", ffi.from_buffer(alive)),
            pcs.shape[0], i64(group), pc_out,
        )
        if count == 0:
            return -1, None
        return int(pc_out[0]), group[:count]

    def template_quad(x, means, precision, prec_stack) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float64)
        means = np.ascontiguousarray(means, dtype=np.float64)
        n, p = x.shape
        c = means.shape[0]
        out = np.empty((n, c), dtype=np.float64)
        if prec_stack is not None:
            stack = np.ascontiguousarray(prec_stack, dtype=np.float64)
            lib.reveal_template_quad_perclass(
                f64(x), f64(means), f64(stack), n, c, p, f64(out)
            )
        else:
            prec = np.ascontiguousarray(precision, dtype=np.float64)
            lib.reveal_template_quad_pooled(
                f64(x), f64(means), f64(prec), n, c, p, f64(out)
            )
        return out

    return Backend(
        name="native",
        version=digest[:8],
        priority=10,
        kernels={
            "ntt_forward": Kernel(ntt_forward),
            "ntt_inverse": Kernel(ntt_inverse),
            "pointwise_mulmod": Kernel(pointwise_mulmod),
            "expand_events": Kernel(expand_events),
            "expand_block": Kernel(expand_block),
            "lane_select": Kernel(lane_select),
            "template_quad": Kernel(template_quad, exact=False),
        },
    )
