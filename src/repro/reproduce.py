"""Command-line reproduction of the paper's tables and figures.

Usage::

    python -m repro.reproduce table3          # fast (estimator only)
    python -m repro.reproduce table4
    python -m repro.reproduce fig3            # needs ~10 s of simulation
    python -m repro.reproduce table1 --traces 80
    python -m repro.reproduce table2 --traces 40
    python -m repro.reproduce all --workers 4
    python -m repro.reproduce campaign --traces 512 --workers 4 \
        --campaign-dir runs/c1 --shard-size 128   # resumable campaign
    python -m repro.reproduce campaign --traces 512 --workers 4 \
        --campaign-dir runs/c1 --resume           # pick up where it died

The pytest benchmarks in ``benchmarks/`` are the full-fidelity
regeneration path; this module is the quick look.  ``table1``/``table2``
run on the campaign engine (:mod:`repro.attack.campaign`): ``--workers
N`` fans profiling captures and the attack phase across a process pool
(bit-identical results for any worker count), and each run prints the
engine's per-stage timing counters.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.backends import BACKEND_NAMES, resolve_backend, set_backend


def _make_bench(noise: float = 1.0):
    from repro.power.capture import TraceAcquisition
    from repro.power.scope import Oscilloscope
    from repro.riscv.device import GaussianSamplerDevice

    device = GaussianSamplerDevice([132120577])
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=noise), rng=0)


def _profiled_attack(bench, traces: int, workers=None):
    from repro.attack.pipeline import SingleTraceAttack

    attack = SingleTraceAttack(bench, poi_count=24)
    report = attack.profile(
        num_traces=max(traces, 60),
        coeffs_per_trace=8,
        first_seed=100_000,
        workers=workers,
    )
    timings = report.timings or {}
    stages = "  ".join(f"{k} {v:.2f}s" for k, v in timings.items())
    print(f"profiling ({report.slice_count} slices): {stages}")
    return attack


def run_fig3() -> None:
    from repro.attack.segmentation import Segmenter

    bench = _make_bench()
    captured = bench.capture(seed=3, count=3)
    print("Fig. 3(a): one trace, three coefficient samplings")
    print(f"  sampled coefficients: {captured.values}")
    for window in Segmenter().windows(captured.trace.samples):
        print(f"  window {window.index}: [{window.start}, {window.end}) "
              f"anchor {window.anchor}")


def run_table1(traces: int, workers=None, engine=None) -> None:
    from repro.attack.campaign import run_campaign

    bench = _make_bench()
    attack = _profiled_attack(bench, traces, workers=workers)
    report = run_campaign(
        attack, trace_count=traces, coeffs_per_trace=8, first_seed=1,
        workers=workers, engine=engine,
    )
    labels = [v for v in range(-5, 6) if report.confusion.total(v) >= 3]
    print("Table I (condensed):")
    print(report.confusion.format_table(labels))
    print(f"sign accuracy {100 * report.sign_accuracy:.2f}% [paper: 100%]")
    print(report.format_timings())


def run_table2(traces: int, workers=None, engine=None) -> None:
    from repro.attack.campaign import run_campaign
    from repro.hints.hintgen import moments_of_table

    bench = _make_bench()
    attack = _profiled_attack(bench, traces, workers=workers)
    report = run_campaign(
        attack, trace_count=traces, coeffs_per_trace=8, first_seed=1,
        workers=workers, engine=engine,
    )
    print("Table II: probability tables (centered / variance):")
    shown = set()
    for value, _, _, table in report.outcomes:
        if value in shown or not (-2 <= value <= 2):
            continue
        shown.add(value)
        mean, variance = moments_of_table(table)
        print(f"  secret {value:3d}: centered {mean:7.3f}  variance {variance:.3e}")
        if len(shown) == 5:
            break
    print(report.format_timings())


def run_campaign_target(
    traces: int,
    workers=None,
    engine=None,
    coeffs: int = 8,
    campaign_dir=None,
    resume: bool = False,
    shard_size: int = 256,
    grain=None,
    profile_cache=None,
) -> None:
    """An orchestrated campaign with checkpoint/resume.

    ``--campaign-dir`` makes the run resumable: every completed shard
    of ``--shard-size`` seeds is checkpointed atomically, and
    ``--resume`` picks up a killed or cancelled run from the last
    completed shard — the final report is bit-identical to an
    uninterrupted run.
    """
    from repro.attack.campaign import profiled_attack_cached
    from repro.attack.orchestrator import run_orchestrated

    bench = _make_bench()
    if profile_cache is not None:
        attack, was_cached, _ = profiled_attack_cached(
            bench,
            profile_cache,
            attack_kwargs={"poi_count": 24},
            num_traces=max(traces, 60),
            coeffs_per_trace=8,
            first_seed=100_000,
            workers=workers,
        )
        print(f"profile cache: {'hit' if was_cached else 'miss (profiled)'}")
    else:
        attack = _profiled_attack(bench, traces, workers=workers)
    report = run_orchestrated(
        attack,
        trace_count=traces,
        coeffs_per_trace=coeffs,
        first_seed=1,
        workers=workers,
        grain=grain,
        engine=engine or "lanes",
        campaign_dir=campaign_dir,
        resume=resume,
        shard_size=shard_size,
    )
    print("orchestrated campaign:")
    print(report.summary())


def run_table3() -> None:
    from repro.hints.estimator import beta_for_dbdd, bikz_to_bits
    from repro.hints.security import (
        PAPER_BIKZ_NO_HINTS,
        PAPER_BIKZ_WITH_HINTS,
        seal_128_dbdd,
        seal_128_parameters,
    )

    params = seal_128_parameters()
    rng = np.random.default_rng(0)
    e2 = np.rint(np.clip(rng.normal(0, params.error_sigma, params.m), -41, 41))
    beta0 = beta_for_dbdd(seal_128_dbdd())
    instance = seal_128_dbdd()
    for i, value in enumerate(e2):
        instance.integrate_perfect_hint(params.n + i, float(value))
    beta1 = beta_for_dbdd(instance)
    print("Table III (SEAL-128):")
    print(f"  without hints: {beta0:7.2f} bikz = 2^{bikz_to_bits(beta0):.2f} "
          f"[paper {PAPER_BIKZ_NO_HINTS}]")
    print(f"  with hints:    {beta1:7.2f} bikz = 2^{bikz_to_bits(beta1):.2f} "
          f"[paper {PAPER_BIKZ_WITH_HINTS}] -> complete break")


def run_table4() -> None:
    from repro.hints.estimator import beta_for_dbdd, bikz_to_bits
    from repro.hints.hintgen import apply_guesses, apply_hints, hints_from_signs
    from repro.hints.security import (
        PAPER_BIKZ_BRANCH_AND_GUESS,
        PAPER_BIKZ_BRANCH_ONLY,
        PAPER_BIKZ_NO_HINTS,
        seal_128_dbdd,
        seal_128_parameters,
    )

    params = seal_128_parameters()
    rng = np.random.default_rng(7)
    e2 = np.rint(np.clip(rng.normal(0, params.error_sigma, params.m), -41, 41))
    signs = np.sign(e2.astype(int))
    beta0 = beta_for_dbdd(seal_128_dbdd())
    instance = seal_128_dbdd()
    hints = hints_from_signs(signs, params.error_sigma)
    apply_hints(instance, hints, params.n)
    beta1 = beta_for_dbdd(instance)
    apply_guesses(instance, hints, params.n, count=1)
    beta2 = beta_for_dbdd(instance)
    print("Table IV (branch vulnerability only):")
    print(f"  without hints:        {beta0:7.2f} [paper {PAPER_BIKZ_NO_HINTS}]")
    print(f"  with hints:           {beta1:7.2f} [paper {PAPER_BIKZ_BRANCH_ONLY}]")
    print(f"  with hints & 1 guess: {beta2:7.2f} [paper {PAPER_BIKZ_BRANCH_AND_GUESS}]")
    print(f"  -> {bikz_to_bits(beta1):.1f} bits remain: signs alone cannot "
          f"recover the message")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce",
        description="Quick reproduction of the RevEAL paper's tables/figures.",
    )
    parser.add_argument(
        "target",
        choices=[
            "fig3", "table1", "table2", "table3", "table4", "campaign", "all",
        ],
    )
    parser.add_argument(
        "--traces",
        type=int,
        default=60,
        help="attack/profiling trace budget for table1/table2 (default 60)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for table1/table2 capture+attack "
        "(default: serial)",
    )
    parser.add_argument(
        "--engine",
        choices=["interpreter", "threaded", "lanes", "compiled"],
        default=None,
        help="execution engine for table1/table2 attack captures "
        "(default: $REVEAL_ENGINE, then threaded; compiled falls back "
        "to threaded without a C toolchain)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="numeric kernel backend for the hot loops "
        "(default: $REVEAL_BACKEND, then capability probe)",
    )
    parser.add_argument(
        "--coeffs",
        type=int,
        default=8,
        help="coefficients per trace for the campaign target (default 8)",
    )
    parser.add_argument(
        "--campaign-dir",
        default=None,
        help="checkpoint directory for the campaign target; completed "
        "shards are written atomically and --resume restarts from them",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the campaign in --campaign-dir from its last "
        "completed shard (fingerprint-checked)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=256,
        help="seeds per checkpoint shard for the campaign target "
        "(default 256)",
    )
    parser.add_argument(
        "--grain",
        type=int,
        default=None,
        help="work-stealing grain in seeds for the campaign target "
        "(default: the lane width)",
    )
    parser.add_argument(
        "--profile-cache",
        default=None,
        help="profile-store directory for the campaign target "
        "(profile once, reuse across runs)",
    )
    args = parser.parse_args(argv)
    if args.resume and args.campaign_dir is None:
        parser.error("--resume needs --campaign-dir")
    if args.backend is not None:
        set_backend(args.backend)
    else:
        # Surface a bad REVEAL_BACKEND value here, at parse time, rather
        # than mid-campaign on the first kernel dispatch.
        resolve_backend(None)
    runners = {
        "fig3": run_fig3,
        "table1": lambda: run_table1(args.traces, args.workers, args.engine),
        "table2": lambda: run_table2(args.traces, args.workers, args.engine),
        "table3": run_table3,
        "table4": run_table4,
        "campaign": lambda: run_campaign_target(
            args.traces,
            workers=args.workers,
            engine=args.engine,
            coeffs=args.coeffs,
            campaign_dir=args.campaign_dir,
            resume=args.resume,
            shard_size=args.shard_size,
            grain=args.grain,
            profile_cache=args.profile_cache,
        ),
    }
    targets = (
        [name for name in runners if name != "campaign"]
        if args.target == "all"
        else [args.target]
    )
    for index, name in enumerate(targets):
        if index:
            print()
        runners[name]()


if __name__ == "__main__":
    main()
