"""RevEAL reproduction: single-trace side-channel leakage of Microsoft SEAL.

This package is a full, self-contained reproduction of the DATE 2022 paper
"RevEAL: Single-Trace Side-Channel Leakage of the SEAL Homomorphic
Encryption Library".  It contains:

``repro.ring``
    Polynomial-ring arithmetic over ``Z_q[x]/(x^n + 1)`` (negacyclic NTT,
    RNS/CRT, NTT-friendly prime generation).
``repro.bfv``
    A SEAL-v3.2-style implementation of the Brakerski/Fan-Vercauteren
    scheme, including the *vulnerable* ``set_poly_coeffs_normal`` noise
    sampler the paper attacks.
``repro.riscv``
    An RV32IM instruction-set simulator with PicoRV32-like timing, a
    two-pass assembler, and the Gaussian-sampling kernel in assembly.
``repro.power``
    Hamming-weight/Hamming-distance power-trace synthesis standing in for
    the paper's SAKURA-G shunt-resistor measurements.
``repro.attack``
    The single-trace attack: trace segmentation, branch (sign)
    classification, SOSD point-of-interest selection, template attack and
    message recovery.
``repro.hints``
    The LWE-with-hints (DBDD) security estimator used to produce the
    paper's bikz numbers (Tables III and IV).
``repro.lattice``
    LLL/BKZ lattice-reduction substrate used to actually solve toy
    instances end to end.
``repro.defenses``
    Shuffling and constant-time-sampler countermeasures discussed in the
    paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
