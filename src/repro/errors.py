"""Exception hierarchy shared across the reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ParameterError(ReproError, ValueError):
    """A cryptographic or simulation parameter is invalid."""


class SamplingError(ReproError, RuntimeError):
    """A random sampler failed to produce a value (e.g. too many rejections)."""


class AssemblyError(ReproError, ValueError):
    """The RISC-V assembler rejected a source program."""


class SimulationError(ReproError, RuntimeError):
    """The RISC-V core hit an illegal state (bad opcode, unmapped memory...)."""


class AttackError(ReproError, RuntimeError):
    """The side-channel attack pipeline could not complete a stage."""


class TraceValidationError(ReproError, ValueError):
    """A captured trace is unusable (empty or contains non-finite samples)."""


class VerificationError(ReproError, AssertionError):
    """A fast/reference oracle pair diverged during differential checking."""


class LatticeError(ReproError, RuntimeError):
    """Lattice reduction failed (non-full-rank basis, no solution found...)."""


class HintError(ReproError, ValueError):
    """A side-channel hint could not be integrated into a DBDD instance."""
